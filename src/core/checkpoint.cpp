#include "core/checkpoint.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "mapping/io.hpp"
#include "util/assert.hpp"
#include "util/atomic_file.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace rdse {

namespace {

const char* init_kind_name(InitKind kind) {
  switch (kind) {
    case InitKind::kRandomPartition: return "random-partition";
    case InitKind::kAllSoftware: return "all-software";
  }
  return "?";
}

InitKind init_kind_from_name(const std::string& name) {
  if (name == "random-partition") return InitKind::kRandomPartition;
  if (name == "all-software") return InitKind::kAllSoftware;
  throw Error("checkpoint: unknown init kind '" + name + "'");
}

ScheduleKind schedule_kind_from_name(const std::string& name) {
  const auto kind = schedule_from_name(name);
  if (!kind.has_value()) {
    throw Error("checkpoint: unknown schedule '" + name + "'");
  }
  return *kind;
}

JsonValue move_config_to_json(const MoveConfig& m) {
  JsonValue doc = JsonValue::object();
  doc.set("p_zero", m.p_zero);
  doc.set("p_change_impl", m.p_change_impl);
  doc.set("p_reorder_contexts", m.p_reorder_contexts);
  doc.set("p_resource_target", m.p_resource_target);
  doc.set("enable_reorder_sw", m.enable_reorder_sw);
  doc.set("enable_reassign", m.enable_reassign);
  return doc;
}

MoveConfig move_config_from_json(const JsonValue& doc) {
  MoveConfig m;
  m.p_zero = doc.at("p_zero").as_number();
  m.p_change_impl = doc.at("p_change_impl").as_number();
  m.p_reorder_contexts = doc.at("p_reorder_contexts").as_number();
  m.p_resource_target = doc.at("p_resource_target").as_number();
  m.enable_reorder_sw = doc.at("enable_reorder_sw").as_bool();
  m.enable_reassign = doc.at("enable_reassign").as_bool();
  return m;
}

JsonValue cost_weights_to_json(const CostWeights& w) {
  JsonValue doc = JsonValue::object();
  doc.set("time_weight", w.time_weight);
  doc.set("price_weight", w.price_weight);
  doc.set("deadline_penalty_per_ms", w.deadline_penalty_per_ms);
  doc.set("deadline", w.deadline);
  return doc;
}

CostWeights cost_weights_from_json(const JsonValue& doc) {
  CostWeights w;
  w.time_weight = doc.at("time_weight").as_number();
  w.price_weight = doc.at("price_weight").as_number();
  w.deadline_penalty_per_ms = doc.at("deadline_penalty_per_ms").as_number();
  w.deadline = doc.at("deadline").as_int();
  return w;
}

JsonValue move_stats_to_json(
    const std::array<MoveClassStats, kMoveKindCount>& stats) {
  JsonValue arr = JsonValue::array();
  for (const MoveClassStats& s : stats) {
    JsonValue row = JsonValue::array();
    row.push_back(s.drawn);
    row.push_back(s.null_draws);
    row.push_back(s.infeasible);
    row.push_back(s.evaluated);
    row.push_back(s.accepted);
    arr.push_back(std::move(row));
  }
  return arr;
}

std::array<MoveClassStats, kMoveKindCount> move_stats_from_json(
    const JsonValue& doc) {
  RDSE_REQUIRE(doc.size() == kMoveKindCount,
               "checkpoint: move-stats class count mismatch");
  std::array<MoveClassStats, kMoveKindCount> stats{};
  for (std::size_t k = 0; k < kMoveKindCount; ++k) {
    const JsonValue& row = doc.items()[k];
    RDSE_REQUIRE(row.size() == 5, "checkpoint: malformed move-stats row");
    stats[k].drawn = row.items()[0].as_int();
    stats[k].null_draws = row.items()[1].as_int();
    stats[k].infeasible = row.items()[2].as_int();
    stats[k].evaluated = row.items()[3].as_int();
    stats[k].accepted = row.items()[4].as_int();
  }
  return stats;
}

}  // namespace

// ------------------------------------------------------------ architecture

JsonValue architecture_to_json(const Architecture& arch) {
  JsonValue doc = JsonValue::object();
  doc.set("bus_bytes_per_second", arch.bus().bytes_per_second());
  JsonValue slots = JsonValue::array();
  for (ResourceId id = 0; id < arch.slot_count(); ++id) {
    if (!arch.alive(id)) {
      slots.push_back(JsonValue());  // tombstone
      continue;
    }
    const Resource& res = arch.resource(id);
    JsonValue slot = JsonValue::object();
    slot.set("kind", to_string(res.kind()));
    slot.set("name", res.name());
    slot.set("price", res.price());
    switch (res.kind()) {
      case ResourceKind::kProcessor:
        slot.set("speed_factor",
                 static_cast<const Processor&>(res).speed_factor());
        break;
      case ResourceKind::kAsic:
        break;
      case ResourceKind::kReconfigurable: {
        const auto& rc = static_cast<const ReconfigurableCircuit&>(res);
        slot.set("n_clbs", static_cast<std::int64_t>(rc.n_clbs()));
        slot.set("tr_per_clb", rc.tr_per_clb());
        break;
      }
    }
    slots.push_back(std::move(slot));
  }
  doc.set("slots", std::move(slots));
  return doc;
}

Architecture architecture_from_json(const JsonValue& doc) {
  Architecture arch(Bus(doc.at("bus_bytes_per_second").as_int()));
  for (const JsonValue& slot : doc.at("slots").items()) {
    if (slot.is_null()) {
      // Rebuild the tombstone so later resource ids keep their positions.
      const ResourceId id = arch.add_processor("tombstone");
      arch.remove(id);
      continue;
    }
    const std::string& kind = slot.at("kind").as_string();
    const std::string& name = slot.at("name").as_string();
    const double price = slot.at("price").as_number();
    if (kind == "processor") {
      (void)arch.add_processor(name, price,
                               slot.at("speed_factor").as_number());
    } else if (kind == "asic") {
      (void)arch.add_asic(name, price);
    } else if (kind == "reconfigurable") {
      const ResourceId id = arch.add_reconfigurable(
          name, static_cast<std::int32_t>(slot.at("n_clbs").as_int()),
          slot.at("tr_per_clb").as_int());
      // add_reconfigurable derives the price from its CLB count; every
      // creation site in the library does the same, so a mismatch means
      // the file does not describe a system this build can reconstruct.
      RDSE_REQUIRE(arch.resource(id).price() == price,
                   "checkpoint: reconfigurable price mismatch");
    } else {
      throw Error("checkpoint: unknown resource kind '" + kind + "'");
    }
  }
  return arch;
}

// ----------------------------------------------------------------- metrics

JsonValue metrics_to_json(const Metrics& m) {
  JsonValue doc = JsonValue::object();
  doc.set("makespan", m.makespan);
  doc.set("init_reconfig", m.init_reconfig);
  doc.set("dyn_reconfig", m.dyn_reconfig);
  doc.set("comm_cross", m.comm_cross);
  doc.set("sw_busy", m.sw_busy);
  doc.set("hw_busy", m.hw_busy);
  doc.set("n_contexts", m.n_contexts);
  doc.set("sw_tasks", m.sw_tasks);
  doc.set("hw_tasks", m.hw_tasks);
  doc.set("clbs_loaded", static_cast<std::int64_t>(m.clbs_loaded));
  doc.set("max_context_clbs", static_cast<std::int64_t>(m.max_context_clbs));
  return doc;
}

Metrics metrics_from_json(const JsonValue& doc) {
  Metrics m;
  m.makespan = doc.at("makespan").as_int();
  m.init_reconfig = doc.at("init_reconfig").as_int();
  m.dyn_reconfig = doc.at("dyn_reconfig").as_int();
  m.comm_cross = doc.at("comm_cross").as_int();
  m.sw_busy = doc.at("sw_busy").as_int();
  m.hw_busy = doc.at("hw_busy").as_int();
  m.n_contexts = static_cast<int>(doc.at("n_contexts").as_int());
  m.sw_tasks = static_cast<int>(doc.at("sw_tasks").as_int());
  m.hw_tasks = static_cast<int>(doc.at("hw_tasks").as_int());
  m.clbs_loaded = static_cast<std::int32_t>(doc.at("clbs_loaded").as_int());
  m.max_context_clbs =
      static_cast<std::int32_t>(doc.at("max_context_clbs").as_int());
  return m;
}

// ----------------------------------------------------------------- configs

JsonValue explorer_config_to_json(const ExplorerConfig& config) {
  JsonValue doc = JsonValue::object();
  doc.set("seed", u64_to_hex(config.seed));
  doc.set("iterations", config.iterations);
  doc.set("warmup_iterations", config.warmup_iterations);
  doc.set("schedule", to_string(config.schedule));
  doc.set("init", init_kind_name(config.init));
  doc.set("moves", move_config_to_json(config.moves));
  doc.set("cost", cost_weights_to_json(config.cost));
  doc.set("adaptive_move_mix", config.adaptive_move_mix);
  doc.set("full_eval", config.full_eval);
  doc.set("batch", config.batch);
  doc.set("freeze_after", config.freeze_after);
  return doc;
}

ExplorerConfig explorer_config_from_json(const JsonValue& doc) {
  ExplorerConfig config;
  config.seed = u64_from_hex(doc.at("seed").as_string());
  config.iterations = doc.at("iterations").as_int();
  config.warmup_iterations = doc.at("warmup_iterations").as_int();
  config.schedule = schedule_kind_from_name(doc.at("schedule").as_string());
  config.init = init_kind_from_name(doc.at("init").as_string());
  config.moves = move_config_from_json(doc.at("moves"));
  config.cost = cost_weights_from_json(doc.at("cost"));
  config.adaptive_move_mix = doc.at("adaptive_move_mix").as_bool();
  config.full_eval = doc.at("full_eval").as_bool();
  config.batch = static_cast<int>(doc.at("batch").as_int());
  config.freeze_after = doc.at("freeze_after").as_int();
  config.record_trace = false;
  return config;
}

JsonValue parallel_explorer_config_to_json(
    const ParallelExplorerConfig& config) {
  JsonValue doc = JsonValue::object();
  doc.set("seed", u64_to_hex(config.seed));
  doc.set("replicas", config.replicas);
  doc.set("iterations", config.iterations);
  doc.set("warmup_iterations", config.warmup_iterations);
  doc.set("exchange_interval", config.exchange_interval);
  doc.set("schedule", to_string(config.schedule));
  JsonValue ladder = JsonValue::array();
  for (const ScheduleKind kind : config.replica_schedules) {
    ladder.push_back(to_string(kind));
  }
  doc.set("replica_schedules", std::move(ladder));
  doc.set("init", init_kind_name(config.init));
  doc.set("moves", move_config_to_json(config.moves));
  doc.set("cost", cost_weights_to_json(config.cost));
  doc.set("adaptive_move_mix", config.adaptive_move_mix);
  doc.set("full_eval", config.full_eval);
  doc.set("batch", config.batch);
  doc.set("freeze_after", config.freeze_after);
  return doc;
}

ParallelExplorerConfig parallel_explorer_config_from_json(
    const JsonValue& doc) {
  ParallelExplorerConfig config;
  config.seed = u64_from_hex(doc.at("seed").as_string());
  config.replicas = static_cast<int>(doc.at("replicas").as_int());
  config.iterations = doc.at("iterations").as_int();
  config.warmup_iterations = doc.at("warmup_iterations").as_int();
  config.exchange_interval = doc.at("exchange_interval").as_int();
  config.schedule = schedule_kind_from_name(doc.at("schedule").as_string());
  config.replica_schedules.clear();
  for (const JsonValue& kind : doc.at("replica_schedules").items()) {
    config.replica_schedules.push_back(
        schedule_kind_from_name(kind.as_string()));
  }
  config.init = init_kind_from_name(doc.at("init").as_string());
  config.moves = move_config_from_json(doc.at("moves"));
  config.cost = cost_weights_from_json(doc.at("cost"));
  config.adaptive_move_mix = doc.at("adaptive_move_mix").as_bool();
  config.full_eval = doc.at("full_eval").as_bool();
  config.batch = static_cast<int>(doc.at("batch").as_int());
  config.freeze_after = doc.at("freeze_after").as_int();
  config.record_trace = false;
  return config;
}

// ------------------------------------------------------------ file envelope

bool save_checkpoint(const std::string& path, const JsonValue& body) {
  JsonValue doc = JsonValue::object();
  doc.set("format", kCheckpointFormat);
  doc.set("checksum", fnv1a64_hex(body.dump()));
  doc.set("body", body);
  std::string data = doc.dump(2);
  data += '\n';
  return write_file_atomic(path, data);
}

JsonValue load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    throw Error("checkpoint: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue doc;
  try {
    doc = JsonValue::parse(buffer.str());
  } catch (const std::exception& e) {
    throw Error("checkpoint: '" + path +
                "' is not valid JSON (truncated or corrupt): " + e.what());
  }
  if (doc.kind() != JsonValue::Kind::kObject) {
    throw Error("checkpoint: '" + path + "' is not a checkpoint document");
  }
  const JsonValue* format = doc.find("format");
  if (format == nullptr || format->kind() != JsonValue::Kind::kString ||
      format->as_string() != kCheckpointFormat) {
    throw Error("checkpoint: '" + path + "' has a foreign format tag (want " +
                std::string(kCheckpointFormat) + ")");
  }
  const JsonValue* checksum = doc.find("checksum");
  const JsonValue* body = doc.find("body");
  if (checksum == nullptr || checksum->kind() != JsonValue::Kind::kString ||
      body == nullptr) {
    throw Error("checkpoint: '" + path + "' is missing checksum or body");
  }
  if (checksum->as_string() != fnv1a64_hex(body->dump())) {
    throw Error("checkpoint: '" + path +
                "' failed its checksum (corrupt or hand-edited)");
  }
  return *body;
}

// -------------------------------------------------- CheckpointableExplorer

CheckpointableExplorer::CheckpointableExplorer(const TaskGraph& tg,
                                               Architecture arch,
                                               const ExplorerConfig& config)
    : tg_(&tg), explorer_(tg, std::move(arch)), config_(config) {
  config_.record_trace = false;
  throw_if_cancelled(config_.cancel);

  // Same derivation as Explorer::run — segment-for-segment bit-identity
  // starts at the initial solution.
  Rng init_rng(config_.seed ^ 0x5851F42D4C957F2DULL);
  Solution initial = explorer_.initial_solution(config_.init, init_rng);

  problem_ = std::make_unique<DseProblem>(
      tg, explorer_.architecture(), std::move(initial), config_.moves,
      config_.cost, config_.adaptive_move_mix, config_.full_eval,
      config_.batch);
  initial_metrics_ = problem_->current_metrics();
  engine_ = std::make_unique<AnnealEngine>(*problem_, anneal_config());
}

CheckpointableExplorer::CheckpointableExplorer(const TaskGraph& tg,
                                               Architecture arch,
                                               const JsonValue& state,
                                               const CancelToken* cancel)
    : tg_(&tg),
      explorer_(tg, std::move(arch)),
      config_(explorer_config_from_json(state.at("config"))) {
  config_.cancel = cancel;
  initial_metrics_ = metrics_from_json(state.at("initial_metrics"));

  const JsonValue& prob = state.at("problem");
  problem_ = std::make_unique<DseProblem>(
      tg, architecture_from_json(prob.at("current_architecture")),
      solution_from_text(tg, prob.at("current_solution").as_string()),
      config_.moves, config_.cost, config_.adaptive_move_mix,
      config_.full_eval, config_.batch);

  // Construction order matters: the engine constructor snapshots the
  // problem's current state as "best"; the checkpointed best is restored
  // afterwards, then the engine's counters/RNG/schedule overwrite the
  // fresh-start values.
  engine_ = std::make_unique<AnnealEngine>(*problem_, anneal_config());
  engine_->load_state(state.at("engine"));
  problem_->restore_best_state(
      architecture_from_json(prob.at("best_architecture")),
      solution_from_text(tg, prob.at("best_solution").as_string()));
  problem_->set_move_stats(move_stats_from_json(prob.at("move_stats")));
  if (const JsonValue* mix = prob.find("move_mix")) {
    RDSE_REQUIRE(problem_->move_mix() != nullptr,
                 "checkpoint: move-mix state without adaptive_move_mix");
    problem_->move_mix()->load_state(*mix);
  }
}

AnnealConfig CheckpointableExplorer::anneal_config() const {
  AnnealConfig ac;
  ac.seed = config_.seed;
  ac.iterations = config_.iterations;
  ac.warmup_iterations = config_.warmup_iterations;
  ac.schedule = config_.schedule;
  ac.freeze_after = config_.freeze_after;
  ac.cancel = config_.cancel;
  return ac;
}

std::int64_t CheckpointableExplorer::step(std::int64_t max_iterations) {
  return engine_->run(max_iterations);
}

bool CheckpointableExplorer::finished() const { return engine_->finished(); }

RunResult CheckpointableExplorer::result() const {
  RunResult result;
  result.initial_metrics = initial_metrics_;
  result.anneal = engine_->result();
  result.best_solution = problem_->best_solution();
  result.best_architecture = problem_->best_architecture();
  result.best_metrics = problem_->best_metrics();
  result.move_stats = problem_->move_stats();
  return result;
}

JsonValue CheckpointableExplorer::save_state() const {
  JsonValue body = JsonValue::object();
  body.set("config", explorer_config_to_json(config_));
  body.set("initial_metrics", metrics_to_json(initial_metrics_));

  JsonValue prob = JsonValue::object();
  prob.set("current_architecture",
           architecture_to_json(problem_->current_architecture()));
  prob.set("current_solution",
           solution_to_text(*tg_, problem_->current_solution()));
  prob.set("best_architecture",
           architecture_to_json(problem_->best_architecture()));
  prob.set("best_solution", solution_to_text(*tg_, problem_->best_solution()));
  prob.set("move_stats", move_stats_to_json(problem_->move_stats()));
  if (problem_->move_mix() != nullptr) {
    JsonValue mix = JsonValue::object();
    problem_->move_mix()->save_state(mix);
    prob.set("move_mix", std::move(mix));
  }
  body.set("problem", std::move(prob));
  body.set("engine", engine_->save_state());
  return body;
}

// ------------------------------------------ CheckpointableParallelExplorer

CheckpointableParallelExplorer::CheckpointableParallelExplorer(
    const TaskGraph& tg, Architecture arch,
    const ParallelExplorerConfig& config)
    : tg_(&tg), explorer_(tg, std::move(arch)), config_(config) {
  RDSE_REQUIRE(config_.replicas >= 1,
               "CheckpointableParallelExplorer: need at least one replica");
  RDSE_REQUIRE(config_.iterations >= 0 && config_.warmup_iterations >= 0 &&
                   config_.exchange_interval >= 0,
               "CheckpointableParallelExplorer: negative iteration counts");
  config_.record_trace = false;
  throw_if_cancelled(config_.cancel);

  const int n = config_.replicas;
  reps_.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    Replica& rep = reps_.emplace_back();
    rep.seed = ParallelExplorer::replica_seed(config_.seed, r);
    rep.schedule =
        config_.replica_schedules.empty()
            ? config_.schedule
            : config_.replica_schedules[static_cast<std::size_t>(r) %
                                        config_.replica_schedules.size()];
    Rng init_rng(rep.seed ^ 0x5851F42D4C957F2DULL);
    Solution initial = explorer_.initial_solution(config_.init, init_rng);
    rep.problem = std::make_unique<DseProblem>(
        tg, explorer_.architecture(), std::move(initial), config_.moves,
        config_.cost, config_.adaptive_move_mix, config_.full_eval,
        config_.batch);
    rep.initial_metrics = rep.problem->current_metrics();
    rep.engine =
        std::make_unique<AnnealEngine>(*rep.problem,
                                       replica_anneal_config(rep));
  }
  make_pool(config_.threads);
}

CheckpointableParallelExplorer::CheckpointableParallelExplorer(
    const TaskGraph& tg, Architecture arch, const JsonValue& state,
    unsigned threads, const CancelToken* cancel)
    : tg_(&tg),
      explorer_(tg, std::move(arch)),
      config_(parallel_explorer_config_from_json(state.at("config"))) {
  config_.cancel = cancel;
  config_.threads = threads;
  started_ = state.at("started").as_bool();
  exchange_rounds_ = state.at("exchange_rounds").as_int();
  adoptions_ = state.at("adoptions").as_int();

  const JsonValue& replicas = state.at("replicas");
  RDSE_REQUIRE(replicas.size() ==
                   static_cast<std::size_t>(config_.replicas),
               "checkpoint: replica count mismatch");
  reps_.reserve(replicas.size());
  for (std::size_t r = 0; r < replicas.size(); ++r) {
    const JsonValue& doc = replicas.items()[r];
    Replica& rep = reps_.emplace_back();
    rep.seed = u64_from_hex(doc.at("seed").as_string());
    rep.schedule = schedule_kind_from_name(doc.at("schedule").as_string());
    rep.adoptions = doc.at("adoptions").as_int();
    rep.initial_metrics = metrics_from_json(doc.at("initial_metrics"));
    rep.problem = std::make_unique<DseProblem>(
        tg, architecture_from_json(doc.at("current_architecture")),
        solution_from_text(tg, doc.at("current_solution").as_string()),
        config_.moves, config_.cost, config_.adaptive_move_mix,
        config_.full_eval, config_.batch);
    rep.engine = std::make_unique<AnnealEngine>(*rep.problem,
                                                replica_anneal_config(rep));
    rep.engine->load_state(doc.at("engine"));
    rep.problem->restore_best_state(
        architecture_from_json(doc.at("best_architecture")),
        solution_from_text(tg, doc.at("best_solution").as_string()));
    rep.problem->set_move_stats(move_stats_from_json(doc.at("move_stats")));
    if (const JsonValue* mix = doc.find("move_mix")) {
      RDSE_REQUIRE(rep.problem->move_mix() != nullptr,
                   "checkpoint: move-mix state without adaptive_move_mix");
      rep.problem->move_mix()->load_state(*mix);
    }
  }
  make_pool(threads);
}

CheckpointableParallelExplorer::CheckpointableParallelExplorer(
    CheckpointableParallelExplorer&&) noexcept = default;
CheckpointableParallelExplorer& CheckpointableParallelExplorer::operator=(
    CheckpointableParallelExplorer&&) noexcept = default;
CheckpointableParallelExplorer::~CheckpointableParallelExplorer() = default;

void CheckpointableParallelExplorer::make_pool(unsigned threads) {
  if (threads == 0) {
    threads = std::min<unsigned>(
        static_cast<unsigned>(config_.replicas),
        std::max(1u, std::thread::hardware_concurrency()));
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

AnnealConfig CheckpointableParallelExplorer::replica_anneal_config(
    const Replica& rep) const {
  AnnealConfig ac;
  ac.seed = rep.seed;
  ac.iterations = config_.iterations;
  ac.warmup_iterations = config_.warmup_iterations;
  ac.schedule = rep.schedule;
  ac.freeze_after = config_.freeze_after;
  ac.cancel = config_.cancel;
  return ac;
}

bool CheckpointableParallelExplorer::any_running() const {
  return std::any_of(reps_.begin(), reps_.end(), [](const Replica& rep) {
    return !rep.engine->finished();
  });
}

bool CheckpointableParallelExplorer::finished() const {
  return !any_running();
}

bool CheckpointableParallelExplorer::step() {
  if (!any_running()) return false;
  const std::int64_t chunk =
      config_.exchange_interval > 0
          ? config_.exchange_interval
          : std::max<std::int64_t>(config_.iterations, 1);
  // Segment 0 covers warm-up plus the first cooling chunk, exactly as in
  // ParallelExplorer::run, so every barrier lands on a shared cooling-
  // iteration boundary.
  const std::int64_t budget =
      started_ ? chunk : config_.warmup_iterations + chunk;
  pool_->parallel_for_index(reps_.size(), [this, budget](std::size_t i) {
    (void)reps_[i].engine->run(budget);
  });
  started_ = true;
  if (config_.replicas > 1 && config_.exchange_interval > 0 &&
      any_running()) {
    exchange();
  }
  return true;
}

void CheckpointableParallelExplorer::exchange() {
  // Verbatim mirror of ParallelExplorer::run's barrier exchange: serial,
  // replica-ordered, computed from snapshotted states.
  const int n = config_.replicas;
  ++exchange_rounds_;
  std::vector<double> best_cost(reps_.size());
  std::vector<double> current_cost(reps_.size());
  for (std::size_t r = 0; r < reps_.size(); ++r) {
    best_cost[r] = reps_[r].engine->best_cost();
    current_cost[r] = reps_[r].engine->current_cost();
  }
  int leader = 0;
  for (int r = 1; r < n; ++r) {
    if (best_cost[static_cast<std::size_t>(r)] <
        best_cost[static_cast<std::size_t>(leader)]) {
      leader = r;
    }
  }
  const int ring = (leader + 1) % n;
  struct Donor {
    Architecture arch;
    Solution sol;
  };
  const Donor leader_donor{
      reps_[static_cast<std::size_t>(leader)].problem->best_architecture(),
      reps_[static_cast<std::size_t>(leader)].problem->best_solution()};
  const Donor ring_donor{
      reps_[static_cast<std::size_t>(ring)].problem->best_architecture(),
      reps_[static_cast<std::size_t>(ring)].problem->best_solution()};
  for (int r = 0; r < n; ++r) {
    Replica& rep = reps_[static_cast<std::size_t>(r)];
    if (rep.engine->finished()) continue;
    const int donor_idx = r == leader ? ring : leader;
    const Donor& donor = donor_idx == leader ? leader_donor : ring_donor;
    if (best_cost[static_cast<std::size_t>(donor_idx)] <
        current_cost[static_cast<std::size_t>(r)]) {
      rep.problem->reset_state(donor.arch, donor.sol);
      rep.engine->notify_state_replaced();
      ++rep.adoptions;
      ++adoptions_;
    }
  }
}

ParallelRunResult CheckpointableParallelExplorer::result() const {
  ParallelRunResult out;
  out.exchange_rounds = exchange_rounds_;
  out.adoptions = adoptions_;

  const int n = config_.replicas;
  int best_replica = 0;
  for (int r = 1; r < n; ++r) {
    if (reps_[static_cast<std::size_t>(r)].engine->best_cost() <
        reps_[static_cast<std::size_t>(best_replica)].engine->best_cost()) {
      best_replica = r;
    }
  }
  out.best_replica = best_replica;

  const Replica& winner = reps_[static_cast<std::size_t>(best_replica)];
  out.best.best_solution = winner.problem->best_solution();
  out.best.best_architecture = winner.problem->best_architecture();
  out.best.best_metrics = winner.problem->best_metrics();
  out.best.initial_metrics = winner.initial_metrics;
  out.best.anneal = winner.engine->result();
  out.best.move_stats = winner.problem->move_stats();

  out.replicas.reserve(reps_.size());
  for (int r = 0; r < n; ++r) {
    const Replica& rep = reps_[static_cast<std::size_t>(r)];
    ReplicaOutcome outcome;
    outcome.replica = r;
    outcome.seed = rep.seed;
    outcome.schedule = rep.schedule;
    outcome.anneal = rep.engine->result();
    outcome.best_metrics = rep.problem->best_metrics();
    outcome.best_cost = rep.engine->best_cost();
    outcome.adoptions = rep.adoptions;
    out.replicas.push_back(std::move(outcome));
  }
  return out;
}

JsonValue CheckpointableParallelExplorer::save_state() const {
  JsonValue body = JsonValue::object();
  body.set("config", parallel_explorer_config_to_json(config_));
  body.set("started", started_);
  body.set("exchange_rounds", exchange_rounds_);
  body.set("adoptions", adoptions_);

  JsonValue replicas = JsonValue::array();
  for (const Replica& rep : reps_) {
    JsonValue doc = JsonValue::object();
    doc.set("seed", u64_to_hex(rep.seed));
    doc.set("schedule", to_string(rep.schedule));
    doc.set("adoptions", rep.adoptions);
    doc.set("initial_metrics", metrics_to_json(rep.initial_metrics));
    doc.set("current_architecture",
            architecture_to_json(rep.problem->current_architecture()));
    doc.set("current_solution",
            solution_to_text(*tg_, rep.problem->current_solution()));
    doc.set("best_architecture",
            architecture_to_json(rep.problem->best_architecture()));
    doc.set("best_solution",
            solution_to_text(*tg_, rep.problem->best_solution()));
    doc.set("move_stats", move_stats_to_json(rep.problem->move_stats()));
    if (rep.problem->move_mix() != nullptr) {
      JsonValue mix = JsonValue::object();
      rep.problem->move_mix()->save_state(mix);
      doc.set("move_mix", std::move(mix));
    }
    doc.set("engine", rep.engine->save_state());
    replicas.push_back(std::move(doc));
  }
  body.set("replicas", std::move(replicas));
  return body;
}

}  // namespace rdse
