#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/table.hpp"

namespace rdse {

std::string describe_solution(const TaskGraph& tg, const Architecture& arch,
                              const Solution& sol) {
  std::ostringstream os;
  for (const ResourceId id : arch.live_ids()) {
    const Resource& res = arch.resource(id);
    switch (res.kind()) {
      case ResourceKind::kProcessor: {
        os << res.name() << " (processor, total order):\n  ";
        const auto order = sol.processor_order(id);
        if (order.empty()) {
          os << "(idle)";
        }
        for (std::size_t i = 0; i < order.size(); ++i) {
          os << (i ? " -> " : "") << tg.task(order[i]).name;
        }
        os << '\n';
        break;
      }
      case ResourceKind::kReconfigurable: {
        const auto& dev = arch.reconfigurable(id);
        os << res.name() << " (reconfigurable, " << dev.n_clbs()
           << " CLBs, tR=" << to_us(dev.tr_per_clb()) << " us/CLB):\n";
        const std::size_t n_ctx = sol.context_count(id);
        if (n_ctx == 0) {
          os << "  (no contexts)\n";
        }
        for (std::size_t c = 0; c < n_ctx; ++c) {
          os << "  context C" << (c + 1) << " ["
             << sol.context_clbs(tg, id, c) << " CLBs]:";
          for (TaskId t : sol.context_tasks(id, c)) {
            const Placement& p = sol.placement(t);
            const auto& impl = tg.task(t).hw.at(p.impl);
            os << ' ' << tg.task(t).name << "(impl" << p.impl << ':'
               << impl.clbs << "clb," << format_double(to_ms(impl.time), 2)
               << "ms)";
          }
          os << '\n';
        }
        break;
      }
      case ResourceKind::kAsic: {
        os << res.name() << " (asic, partial order):\n ";
        const auto members = sol.asic_tasks(id);
        if (members.empty()) os << " (idle)";
        for (TaskId t : members) {
          os << ' ' << tg.task(t).name;
        }
        os << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string describe_metrics(const Metrics& m) {
  std::ostringstream os;
  os << "makespan " << format_ms(m.makespan) << " | reconfiguration "
     << format_ms(m.total_reconfig()) << " (initial "
     << format_ms(m.init_reconfig) << " + dynamic "
     << format_ms(m.dyn_reconfig) << ") | bus transfers "
     << format_ms(m.comm_cross) << " | " << m.n_contexts << " context(s), "
     << m.hw_tasks << " hw / " << m.sw_tasks << " sw tasks | "
     << m.clbs_loaded << " CLBs loaded (max context " << m.max_context_clbs
     << ")";
  return os.str();
}

std::string describe_move_stats(
    const std::array<MoveClassStats, kMoveKindCount>& stats) {
  Table table({"move class", "drawn", "null", "cyclic", "evaluated",
               "accepted", "accept %"});
  for (std::size_t k = 0; k < kMoveKindCount; ++k) {
    const MoveClassStats& s = stats[k];
    if (s.drawn == 0) continue;
    const double pct =
        s.evaluated > 0
            ? 100.0 * static_cast<double>(s.accepted) /
                  static_cast<double>(s.evaluated)
            : 0.0;
    table.row()
        .cell(std::string(to_string(static_cast<MoveKind>(k))))
        .cell(s.drawn)
        .cell(s.null_draws)
        .cell(s.infeasible)
        .cell(s.evaluated)
        .cell(s.accepted)
        .cell(pct, 1);
  }
  return table.to_text();
}

void print_run_report(std::ostream& os, const TaskGraph& tg,
                      const RunResult& result) {
  os << "=== exploration report ===\n"
     << "schedule " << result.anneal.schedule_name << ", "
     << result.anneal.iterations_run << " iterations ("
     << result.anneal.accepted << " accepted, " << result.anneal.rejected
     << " rejected, " << result.anneal.infeasible << " null/cyclic), "
     << format_double(result.wall_seconds * 1000.0, 1) << " ms wall clock\n"
     << "initial: " << describe_metrics(result.initial_metrics) << '\n'
     << "best:    " << describe_metrics(result.best_metrics) << '\n'
     << '\n'
     << describe_solution(tg, result.best_architecture, result.best_solution)
     << '\n'
     << "move statistics:\n"
     << describe_move_stats(result.move_stats) << '\n'
     << "schedule (bus-serialized timeline):\n"
     << build_timeline(tg, result.best_architecture, result.best_solution)
            .to_ascii()
     << '\n';
}

void print_parallel_report(std::ostream& os, const TaskGraph& tg,
                           const ParallelRunResult& result) {
  os << "=== parallel exploration report ===\n"
     << result.replicas.size() << " replica(s), " << result.exchange_rounds
     << " exchange round(s), " << result.adoptions << " adoption(s), "
     << format_double(result.wall_seconds * 1000.0, 1) << " ms wall clock\n";

  Table table({"replica", "schedule", "best makespan", "best cost", "accepted",
               "rejected", "adoptions"});
  for (const ReplicaOutcome& rep : result.replicas) {
    std::string name(to_string(rep.schedule));
    if (rep.replica == result.best_replica) name += " *";
    table.row()
        .cell(rep.replica)
        .cell(std::move(name))
        .cell(format_ms(rep.best_metrics.makespan))
        .cell(rep.best_cost, 3)
        .cell(rep.anneal.accepted)
        .cell(rep.anneal.rejected)
        .cell(rep.adoptions);
  }
  os << table.to_text() << '\n';

  print_run_report(os, tg, result.best);
}

// ----------------------------------------------------------------- sweeps

std::string describe_sweep(const SweepResult& sweep) {
  Table table({"point", "x", "runs", "mean ms", "sd", "best ms", "worst ms",
               "init rcf ms", "dyn rcf ms", "contexts", "hw tasks",
               "hit rate"});
  for (const SweepPointResult& p : sweep.points) {
    const RunAggregate& a = p.aggregate;
    table.row()
        .cell(std::string(p.label))
        .cell(p.x, 0)
        .cell(static_cast<std::int64_t>(a.runs))
        .cell(a.mean_makespan_ms, 2)
        .cell(a.stddev_makespan_ms, 2)
        .cell(a.best_makespan_ms, 2)
        .cell(a.worst_makespan_ms, 2)
        .cell(a.mean_init_reconfig_ms, 2)
        .cell(a.mean_dyn_reconfig_ms, 2)
        .cell(a.mean_contexts, 2)
        .cell(a.mean_hw_tasks, 1)
        .cell(a.deadline_hit_rate, 2);
  }
  std::ostringstream os;
  std::string title = "sweep '" + sweep.name + "'";
  if (sweep.deadline > 0) {
    title += " (deadline " + format_ms(sweep.deadline) + ")";
  }
  table.print(os, title);
  return os.str();
}

std::string plot_sweep(const SweepResult& sweep) {
  Series exec{"mean execution time (ms)", {}, {}, '*'};
  Series init_rcf{"initial reconfiguration (ms)", {}, {}, 'i'};
  Series dyn_rcf{"dynamic reconfiguration (ms)", {}, {}, 'd'};
  Series contexts{"number of contexts", {}, {}, 'o'};
  for (const SweepPointResult& p : sweep.points) {
    if (p.aggregate.runs <= 0) continue;
    exec.x.push_back(p.x);
    exec.y.push_back(p.aggregate.mean_makespan_ms);
    init_rcf.x.push_back(p.x);
    init_rcf.y.push_back(p.aggregate.mean_init_reconfig_ms);
    dyn_rcf.x.push_back(p.x);
    dyn_rcf.y.push_back(p.aggregate.mean_dyn_reconfig_ms);
    contexts.x.push_back(p.x);
    contexts.y.push_back(p.aggregate.mean_contexts);
  }
  if (exec.x.size() < 2) return "";
  const std::string title = "sweep '" + sweep.name + "' — means per point";
  return render_plot({exec, init_rcf, dyn_rcf, contexts},
                     PlotOptions{72, 18, sweep.axis_label, title, true});
}

JsonValue sweep_to_json(const SweepResult& sweep) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", "rdse.sweep.v1");
  doc.set("name", sweep.name);
  doc.set("axis_label", sweep.axis_label);
  doc.set("deadline_ms", to_ms(sweep.deadline));
  doc.set("threads", static_cast<std::int64_t>(sweep.threads_used));
  doc.set("wall_seconds", sweep.wall_seconds);
  JsonValue points = JsonValue::array();
  for (const SweepPointResult& p : sweep.points) {
    const RunAggregate& a = p.aggregate;
    JsonValue point = JsonValue::object();
    point.set("label", p.label);
    point.set("x", p.x);
    point.set("runs", static_cast<std::int64_t>(p.runs.size()));
    point.set("mean_makespan_ms", a.mean_makespan_ms);
    point.set("stddev_makespan_ms", a.stddev_makespan_ms);
    point.set("best_makespan_ms", a.best_makespan_ms);
    point.set("worst_makespan_ms", a.worst_makespan_ms);
    point.set("mean_init_reconfig_ms", a.mean_init_reconfig_ms);
    point.set("mean_dyn_reconfig_ms", a.mean_dyn_reconfig_ms);
    point.set("mean_contexts", a.mean_contexts);
    point.set("mean_hw_tasks", a.mean_hw_tasks);
    point.set("mean_wall_seconds", a.mean_wall_seconds);
    point.set("deadline_hit_rate", a.deadline_hit_rate);
    points.push_back(std::move(point));
  }
  doc.set("points", std::move(points));
  return doc;
}

std::vector<std::string> validate_sweep_json(const JsonValue& artifact) {
  std::vector<std::string> errors;
  const auto check = [&errors](bool ok, const std::string& what) {
    if (!ok) errors.push_back(what);
    return ok;
  };

  if (!check(artifact.kind() == JsonValue::Kind::kObject,
             "artifact is not a JSON object")) {
    return errors;
  }
  const JsonValue* schema = artifact.find("schema");
  check(schema != nullptr &&
            schema->kind() == JsonValue::Kind::kString &&
            schema->as_string() == "rdse.sweep.v1",
        "missing or unsupported 'schema' (want \"rdse.sweep.v1\")");

  const auto string_field = [&](const char* key) {
    const JsonValue* v = artifact.find(key);
    check(v != nullptr && v->kind() == JsonValue::Kind::kString,
          std::string("missing string field '") + key + "'");
  };
  const auto number_field = [&](const JsonValue& obj, const char* key,
                                const std::string& where) {
    const JsonValue* v = obj.find(key);
    check(v != nullptr && v->kind() == JsonValue::Kind::kNumber,
          where + ": missing number field '" + key + "'");
  };
  string_field("name");
  string_field("axis_label");
  number_field(artifact, "deadline_ms", "artifact");
  number_field(artifact, "threads", "artifact");

  const JsonValue* points = artifact.find("points");
  if (!check(points != nullptr &&
                 points->kind() == JsonValue::Kind::kArray,
             "missing array field 'points'")) {
    return errors;
  }
  static constexpr const char* kPointNumbers[] = {
      "x",
      "runs",
      "mean_makespan_ms",
      "stddev_makespan_ms",
      "best_makespan_ms",
      "worst_makespan_ms",
      "mean_init_reconfig_ms",
      "mean_dyn_reconfig_ms",
      "mean_contexts",
      "mean_hw_tasks",
      "deadline_hit_rate",
  };
  for (std::size_t i = 0; i < points->items().size(); ++i) {
    const JsonValue& point = points->items()[i];
    const std::string where = "points[" + std::to_string(i) + "]";
    if (!check(point.kind() == JsonValue::Kind::kObject,
               where + " is not an object")) {
      continue;
    }
    const JsonValue* label = point.find("label");
    check(label != nullptr && label->kind() == JsonValue::Kind::kString,
          where + ": missing string field 'label'");
    for (const char* key : kPointNumbers) {
      number_field(point, key, where);
    }
    if (const JsonValue* runs = point.find("runs");
        runs != nullptr && runs->kind() == JsonValue::Kind::kNumber) {
      const double r = runs->as_number();
      check(r >= 0.0 && r <= 1e9 && r == std::floor(r),
            where + ": 'runs' must be an integer in [0, 1e9]");
    }
  }
  return errors;
}

std::string render_sweep_artifact(const JsonValue& artifact) {
  // Rebuild a SweepResult skeleton from the aggregate fields (per-run data
  // is not part of the artifact) and reuse the normal renderers.
  SweepResult sweep;
  sweep.name = artifact.at("name").as_string();
  sweep.axis_label = artifact.at("axis_label").as_string();
  sweep.deadline = from_ms(artifact.at("deadline_ms").as_number());
  sweep.threads_used =
      static_cast<unsigned>(artifact.at("threads").as_int());
  if (const JsonValue* wall = artifact.find("wall_seconds");
      wall != nullptr && wall->kind() == JsonValue::Kind::kNumber) {
    sweep.wall_seconds = wall->as_number();
  }
  for (const JsonValue& point : artifact.at("points").items()) {
    SweepPointResult p;
    p.label = point.at("label").as_string();
    p.x = point.at("x").as_number();
    p.aggregate.runs = static_cast<int>(
        std::clamp<std::int64_t>(point.at("runs").as_int(), 0,
                                 1'000'000'000));
    p.aggregate.mean_makespan_ms = point.at("mean_makespan_ms").as_number();
    p.aggregate.stddev_makespan_ms =
        point.at("stddev_makespan_ms").as_number();
    p.aggregate.best_makespan_ms = point.at("best_makespan_ms").as_number();
    p.aggregate.worst_makespan_ms =
        point.at("worst_makespan_ms").as_number();
    p.aggregate.mean_init_reconfig_ms =
        point.at("mean_init_reconfig_ms").as_number();
    p.aggregate.mean_dyn_reconfig_ms =
        point.at("mean_dyn_reconfig_ms").as_number();
    p.aggregate.mean_contexts = point.at("mean_contexts").as_number();
    p.aggregate.mean_hw_tasks = point.at("mean_hw_tasks").as_number();
    p.aggregate.deadline_hit_rate =
        point.at("deadline_hit_rate").as_number();
    sweep.points.push_back(std::move(p));
  }
  std::string out = describe_sweep(sweep);
  const std::string plot = plot_sweep(sweep);
  if (!plot.empty()) {
    out += '\n';
    out += plot;
  }
  return out;
}

}  // namespace rdse
