#include "core/report.hpp"

#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace rdse {

std::string describe_solution(const TaskGraph& tg, const Architecture& arch,
                              const Solution& sol) {
  std::ostringstream os;
  for (const ResourceId id : arch.live_ids()) {
    const Resource& res = arch.resource(id);
    switch (res.kind()) {
      case ResourceKind::kProcessor: {
        os << res.name() << " (processor, total order):\n  ";
        const auto order = sol.processor_order(id);
        if (order.empty()) {
          os << "(idle)";
        }
        for (std::size_t i = 0; i < order.size(); ++i) {
          os << (i ? " -> " : "") << tg.task(order[i]).name;
        }
        os << '\n';
        break;
      }
      case ResourceKind::kReconfigurable: {
        const auto& dev = arch.reconfigurable(id);
        os << res.name() << " (reconfigurable, " << dev.n_clbs()
           << " CLBs, tR=" << to_us(dev.tr_per_clb()) << " us/CLB):\n";
        const std::size_t n_ctx = sol.context_count(id);
        if (n_ctx == 0) {
          os << "  (no contexts)\n";
        }
        for (std::size_t c = 0; c < n_ctx; ++c) {
          os << "  context C" << (c + 1) << " ["
             << sol.context_clbs(tg, id, c) << " CLBs]:";
          for (TaskId t : sol.context_tasks(id, c)) {
            const Placement& p = sol.placement(t);
            const auto& impl = tg.task(t).hw.at(p.impl);
            os << ' ' << tg.task(t).name << "(impl" << p.impl << ':'
               << impl.clbs << "clb," << format_double(to_ms(impl.time), 2)
               << "ms)";
          }
          os << '\n';
        }
        break;
      }
      case ResourceKind::kAsic: {
        os << res.name() << " (asic, partial order):\n ";
        const auto members = sol.asic_tasks(id);
        if (members.empty()) os << " (idle)";
        for (TaskId t : members) {
          os << ' ' << tg.task(t).name;
        }
        os << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string describe_metrics(const Metrics& m) {
  std::ostringstream os;
  os << "makespan " << format_ms(m.makespan) << " | reconfiguration "
     << format_ms(m.total_reconfig()) << " (initial "
     << format_ms(m.init_reconfig) << " + dynamic "
     << format_ms(m.dyn_reconfig) << ") | bus transfers "
     << format_ms(m.comm_cross) << " | " << m.n_contexts << " context(s), "
     << m.hw_tasks << " hw / " << m.sw_tasks << " sw tasks | "
     << m.clbs_loaded << " CLBs loaded (max context " << m.max_context_clbs
     << ")";
  return os.str();
}

std::string describe_move_stats(
    const std::array<MoveClassStats, kMoveKindCount>& stats) {
  Table table({"move class", "drawn", "null", "cyclic", "evaluated",
               "accepted", "accept %"});
  for (std::size_t k = 0; k < kMoveKindCount; ++k) {
    const MoveClassStats& s = stats[k];
    if (s.drawn == 0) continue;
    const double pct =
        s.evaluated > 0
            ? 100.0 * static_cast<double>(s.accepted) /
                  static_cast<double>(s.evaluated)
            : 0.0;
    table.row()
        .cell(std::string(to_string(static_cast<MoveKind>(k))))
        .cell(s.drawn)
        .cell(s.null_draws)
        .cell(s.infeasible)
        .cell(s.evaluated)
        .cell(s.accepted)
        .cell(pct, 1);
  }
  return table.to_text();
}

void print_run_report(std::ostream& os, const TaskGraph& tg,
                      const RunResult& result) {
  os << "=== exploration report ===\n"
     << "schedule " << result.anneal.schedule_name << ", "
     << result.anneal.iterations_run << " iterations ("
     << result.anneal.accepted << " accepted, " << result.anneal.rejected
     << " rejected, " << result.anneal.infeasible << " null/cyclic), "
     << format_double(result.wall_seconds * 1000.0, 1) << " ms wall clock\n"
     << "initial: " << describe_metrics(result.initial_metrics) << '\n'
     << "best:    " << describe_metrics(result.best_metrics) << '\n'
     << '\n'
     << describe_solution(tg, result.best_architecture, result.best_solution)
     << '\n'
     << "move statistics:\n"
     << describe_move_stats(result.move_stats) << '\n'
     << "schedule (bus-serialized timeline):\n"
     << build_timeline(tg, result.best_architecture, result.best_solution)
            .to_ascii()
     << '\n';
}

void print_parallel_report(std::ostream& os, const TaskGraph& tg,
                           const ParallelRunResult& result) {
  os << "=== parallel exploration report ===\n"
     << result.replicas.size() << " replica(s), " << result.exchange_rounds
     << " exchange round(s), " << result.adoptions << " adoption(s), "
     << format_double(result.wall_seconds * 1000.0, 1) << " ms wall clock\n";

  Table table({"replica", "schedule", "best makespan", "best cost", "accepted",
               "rejected", "adoptions"});
  for (const ReplicaOutcome& rep : result.replicas) {
    std::string name(to_string(rep.schedule));
    if (rep.replica == result.best_replica) name += " *";
    table.row()
        .cell(rep.replica)
        .cell(std::move(name))
        .cell(format_ms(rep.best_metrics.makespan))
        .cell(rep.best_cost, 3)
        .cell(rep.anneal.accepted)
        .cell(rep.anneal.rejected)
        .cell(rep.adoptions);
  }
  os << table.to_text() << '\n';

  print_run_report(os, tg, result.best);
}

}  // namespace rdse
