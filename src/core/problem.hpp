#pragma once
/// \file problem.hpp
/// \brief The design-space exploration problem handed to the annealer:
/// state = (architecture, solution), moves = §4.2, cost = §4.4 longest path
/// (optionally blended with system price and a deadline penalty for the
/// architecture-exploration mode of [11]).

#include <array>
#include <memory>
#include <optional>

#include "anneal/annealer.hpp"
#include "anneal/move_control.hpp"
#include "core/moves.hpp"
#include "sched/evaluator.hpp"
#include "sched/incremental_eval.hpp"

namespace rdse {

/// Objective weights. With the defaults the cost is the execution time in
/// milliseconds — the paper's §5 criterion for a fixed architecture. For
/// architecture exploration, price_weight > 0 charges the system cost and
/// deadline_penalty_per_ms turns the performance constraint into a soft
/// barrier.
struct CostWeights {
  double time_weight = 1.0;            ///< per ms of makespan
  double price_weight = 0.0;           ///< per unit of resource price
  double deadline_penalty_per_ms = 0.0;
  TimeNs deadline = 0;
};

/// Per-move-class counters (proposals may be null, infeasible = cyclic G').
struct MoveClassStats {
  std::int64_t drawn = 0;
  std::int64_t null_draws = 0;
  std::int64_t infeasible = 0;
  std::int64_t evaluated = 0;
  std::int64_t accepted = 0;
};

class DseProblem final : public AnnealProblem {
 public:
  /// `full_eval` switches the hot path back to realizing and relaxing the
  /// whole search graph per move (the reference path) — the A/B escape
  /// hatch for the incremental evaluator, which is bit-identical but kept
  /// verifiable.
  ///
  /// `batch` (K >= 1) is the number of candidate moves probed per annealing
  /// step against the same committed state; the cheapest feasible probe is
  /// handed to the engine's Metropolis test ("best of K, then Metropolis").
  /// K = 1 is bit-identical to the classic one-probe path.
  DseProblem(const TaskGraph& tg, Architecture arch, Solution initial,
             MoveConfig moves = {}, CostWeights weights = {},
             bool adaptive_move_mix = false, bool full_eval = false,
             int batch = 1);

  // AnnealProblem interface.
  [[nodiscard]] double cost() const override { return cost_; }
  bool propose(Rng& rng) override;
  [[nodiscard]] double candidate_cost() const override { return cand_cost_; }
  void accept() override;
  void reject() override;
  void snapshot_best() override;

  // Inspection.
  [[nodiscard]] const Solution& current_solution() const { return sol_; }
  [[nodiscard]] const Architecture& current_architecture() const {
    return arch_;
  }
  [[nodiscard]] const Metrics& current_metrics() const { return metrics_; }
  [[nodiscard]] const Solution& best_solution() const { return best_sol_; }
  [[nodiscard]] const Architecture& best_architecture() const {
    return best_arch_;
  }
  [[nodiscard]] const Metrics& best_metrics() const { return best_metrics_; }
  [[nodiscard]] const std::array<MoveClassStats, kMoveKindCount>&
  move_stats() const {
    return move_stats_;
  }
  /// Incremental-evaluation counters; nullopt when running with full_eval.
  [[nodiscard]] std::optional<IncrementalEvalStats> incremental_stats()
      const {
    if (!inc_) return std::nullopt;
    return inc_->stats();
  }
  /// Toggle the incremental evaluator's per-phase micro-profile (no-op in
  /// full_eval mode); see IncrementalEvalStats::profile_*_ns.
  void set_incremental_profile(bool on) {
    if (inc_) inc_->set_profile(on);
  }

  /// Cost of a (makespan, price) pair under the configured weights.
  [[nodiscard]] double cost_of(const Metrics& m,
                               const Architecture& arch) const;

  /// Replace the *current* state with an externally supplied one (replica
  /// exchange): validates, re-evaluates, and updates the current cost. The
  /// best-so-far snapshot and move statistics are left untouched; callers
  /// driving an AnnealEngine must follow up with notify_state_replaced().
  void reset_state(Architecture arch, Solution sol);

  /// Checkpoint restore: replace the best-so-far snapshot (validated and
  /// re-evaluated). The construction sequence of a resumed problem takes
  /// the checkpointed *current* state through the constructor and the
  /// engine's initial snapshot_best() clobbers best with it; this puts the
  /// checkpointed best back.
  void restore_best_state(Architecture arch, Solution sol);

  /// Checkpoint restore of the per-class move counters.
  void set_move_stats(const std::array<MoveClassStats, kMoveKindCount>& s) {
    move_stats_ = s;
  }

  /// Adaptive move-mix controller; nullptr unless adaptive_move_mix was
  /// requested. Exposed for checkpoint save/restore of its EWMA state.
  [[nodiscard]] MoveMixController* move_mix() { return mix_.get(); }
  [[nodiscard]] const MoveMixController* move_mix() const {
    return mix_.get();
  }

 private:
  /// One §4.2 move draw into the candidate buffers (adaptive-mix forcing
  /// included) — shared by the single and batched propose paths.
  MoveOutcome generate_candidate_move(Rng& rng);
  /// The classic one-probe propose (K = 1).
  bool propose_single(Rng& rng);
  /// K > 1: probe a batch against the committed state, keep the argmin.
  bool propose_batched(Rng& rng);

  const TaskGraph* tg_;
  MoveConfig move_config_;
  CostWeights weights_;

  Architecture arch_;
  Solution sol_;
  Metrics metrics_;
  double cost_ = 0.0;

  Architecture cand_arch_;
  Solution cand_sol_;
  Metrics cand_metrics_;
  double cand_cost_ = 0.0;
  MoveKind cand_kind_ = MoveKind::kReassign;

  Architecture best_arch_;
  Solution best_sol_;
  Metrics best_metrics_;

  /// Batched-probe machinery (batch_ > 1): the cheapest feasible probe seen
  /// so far within one propose() call. Persistent buffers so the hot path
  /// swaps storage instead of allocating.
  Architecture winner_arch_;
  Solution winner_sol_;
  Metrics winner_metrics_;
  double winner_cost_ = 0.0;
  MoveKind winner_kind_ = MoveKind::kReassign;
  bool winner_arch_mutated_ = false;
  /// Probes evaluated per annealing step (K); 1 = the classic path.
  int batch_ = 1;

  std::unique_ptr<MoveMixController> mix_;
  std::array<MoveClassStats, kMoveKindCount> move_stats_{};
  /// Hot-path evaluator (null when full_eval was requested).
  std::unique_ptr<IncrementalEvaluator> inc_;
  /// True when cand_arch_/cand_sol_ may differ from the current state and
  /// must be re-copied before the next move (skipping the copy after null
  /// draws and accepted moves keeps the hot path allocation-free).
  bool cand_arch_stale_ = true;
  bool cand_sol_stale_ = true;
  /// True when the staged move mutated the candidate architecture (m3/m4).
  /// accept() deep-clones the architecture (unique_ptr resources) only
  /// then — every other move leaves arch_ == cand_arch_ already.
  bool cand_arch_mutated_ = false;
};

}  // namespace rdse
