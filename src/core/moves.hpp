#pragma once
/// \file moves.hpp
/// \brief The move classes of §4.2/§4.3 and their realization.
///
/// A move is defined by randomly selecting a source task vs and a
/// destination task vd (indices drawn in [0, N]; 0 stands for "no task" and
/// triggers the architecture-exploration moves):
///
///  - m1 (kReorderSw): same resource, resource is a processor — modify the
///    total execution order (vs is repositioned next to vd); on an ASIC or
///    RC context the draw is a null move.
///  - m2 (kReassign): different resources — vs joins vd's resource; if the
///    destination is an RC context whose remaining capacity cannot hold vs,
///    a new context is spawned right after it.
///  - m3 (kRemoveResource): source index 0 and some resource holds a single
///    task — the resource is removed, its task joins vd's resource.
///  - m4 (kCreateResource): destination index 0 — a new resource is created
///    and vs moves there.
///
/// Two additional classes exercise the remaining §5 degrees of freedom:
///  - kChangeImpl: pick a different synthesized implementation for a
///    hardware task (§5: "SA chooses for each node implemented in hardware
///    one of its implementations");
///  - kReorderContexts: swap two adjacent contexts of an RC (temporal
///    re-sequencing beyond what reassignments reach).
///
/// Moves mutate a *candidate* Solution (and, for m3/m4, a candidate
/// Architecture); feasibility (graph acyclicity) is judged afterwards by
/// evaluation, per §4.3 "a move will not be performed if a cycle appears".

#include <cstdint>
#include <optional>
#include <string>

#include "arch/architecture.hpp"
#include "mapping/solution.hpp"
#include "model/task_graph.hpp"
#include "util/rng.hpp"

namespace rdse {

enum class MoveKind : std::uint8_t {
  kReorderSw = 0,        // m1
  kReassign = 1,         // m2
  kRemoveResource = 2,   // m3
  kCreateResource = 3,   // m4
  kChangeImpl = 4,
  kReorderContexts = 5,
};
constexpr std::size_t kMoveKindCount = 6;

[[nodiscard]] const char* to_string(MoveKind kind);

/// Configuration of the move generator.
struct MoveConfig {
  /// Probability that the §4.2 draw selects index 0 (architecture moves).
  /// "In this paper, the architecture comprises one processor and one DRLC,
  /// hence the probability of generating a 0 is set to 0."
  double p_zero = 0.0;
  /// Probability of drawing an implementation-selection move.
  double p_change_impl = 0.15;
  /// Probability of drawing a context-reorder move.
  double p_reorder_contexts = 0.05;
  /// Ergodicity patch (documented deviation): probability that a reassign
  /// targets a random *resource* (random position / random-or-new context)
  /// instead of a destination task. The paper's task-addressed destinations
  /// cannot reach an empty resource, so a search that ever empties the FPGA
  /// could never repopulate it.
  double p_resource_target = 0.10;
  /// Disable individual classes (ablation).
  bool enable_reorder_sw = true;
  bool enable_reassign = true;
};

/// Outcome of one generation attempt.
struct MoveOutcome {
  MoveKind kind = MoveKind::kReassign;
  bool applied = false;  ///< false: the draw was null (§4.2 m1-on-ASIC etc.)
};

/// Draw and realize one move on the candidate state. Returns the outcome;
/// when `applied` is false the candidate is untouched. The caller evaluates
/// the candidate afterwards and rejects it if the realized search graph is
/// cyclic or a capacity bound broke.
[[nodiscard]] MoveOutcome generate_move(const TaskGraph& tg,
                                        Architecture& arch, Solution& sol,
                                        const MoveConfig& config, Rng& rng);

/// Individual realizations (also used directly by tests). Each returns
/// false — leaving the state untouched — when its preconditions do not hold.
[[nodiscard]] bool apply_reorder_sw(const TaskGraph& tg,
                                    const Architecture& arch, Solution& sol,
                                    TaskId vs, TaskId vd, bool after,
                                    Rng& rng);
[[nodiscard]] bool apply_reassign(const TaskGraph& tg,
                                  const Architecture& arch, Solution& sol,
                                  TaskId vs, TaskId vd, Rng& rng);
/// Reassign vs onto an explicit resource: random order position on a
/// processor; a random existing context, or a fresh one appended at the
/// tail, on an RC (the ergodicity patch — see MoveConfig::p_resource_target).
[[nodiscard]] bool apply_reassign_to_resource(const TaskGraph& tg,
                                              const Architecture& arch,
                                              Solution& sol, TaskId vs,
                                              ResourceId target, Rng& rng);
[[nodiscard]] bool apply_change_impl(const TaskGraph& tg,
                                     const Architecture& arch, Solution& sol,
                                     TaskId vs, Rng& rng);
[[nodiscard]] bool apply_reorder_contexts(const Architecture& arch,
                                          Solution& sol, Rng& rng);
[[nodiscard]] bool apply_remove_resource(const TaskGraph& tg,
                                         Architecture& arch, Solution& sol,
                                         TaskId vd, Rng& rng);
[[nodiscard]] bool apply_create_resource(const TaskGraph& tg,
                                         Architecture& arch, Solution& sol,
                                         TaskId vs, Rng& rng);

}  // namespace rdse
