#include "core/trace.hpp"

#include <sstream>

#include "util/assert.hpp"

namespace rdse {

const TraceRow& Trace::at(std::size_t i) const {
  RDSE_REQUIRE(i < rows_.size(), "Trace::at: index out of range");
  return rows_[i];
}

Trace Trace::downsample(std::size_t max_points) const {
  RDSE_REQUIRE(max_points >= 2, "Trace::downsample: need >= 2 points");
  if (rows_.size() <= max_points) {
    return *this;
  }
  Trace out;
  const std::size_t n = rows_.size();
  for (std::size_t i = 0; i < max_points - 1; ++i) {
    out.add(rows_[i * (n - 1) / (max_points - 1)]);
  }
  out.add(rows_.back());
  return out;
}

std::string Trace::to_csv() const {
  std::ostringstream os;
  os << "iteration,cost,best,temperature,contexts,accepted,warmup\n";
  for (const TraceRow& r : rows_) {
    os << r.iteration << ',' << r.cost << ',' << r.best << ','
       << r.temperature << ',' << r.n_contexts << ',' << (r.accepted ? 1 : 0)
       << ',' << (r.warmup ? 1 : 0) << '\n';
  }
  return os.str();
}

std::vector<double> Trace::iterations() const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(static_cast<double>(r.iteration));
  return out;
}

std::vector<double> Trace::costs() const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r.cost);
  return out;
}

std::vector<double> Trace::contexts() const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(static_cast<double>(r.n_contexts));
  return out;
}

}  // namespace rdse
