#include "core/explorer.hpp"

#include <chrono>

#include "util/assert.hpp"
#include "util/statistics.hpp"

namespace rdse {

Explorer::Explorer(const TaskGraph& tg, Architecture arch)
    : tg_(&tg), arch_(std::move(arch)) {
  tg.validate();
  RDSE_REQUIRE(!arch_.processor_ids().empty(),
               "Explorer: architecture needs at least one processor");
}

Solution Explorer::initial_solution(InitKind kind, Rng& rng) const {
  const ResourceId proc = arch_.processor_ids().front();
  switch (kind) {
    case InitKind::kAllSoftware:
      return Solution::all_software(*tg_, proc);
    case InitKind::kRandomPartition: {
      const auto rcs = arch_.reconfigurable_ids();
      if (rcs.empty()) {
        return Solution::all_software(*tg_, proc);
      }
      return Solution::random_partition(*tg_, arch_, proc, rcs.front(), rng);
    }
  }
  RDSE_ASSERT_MSG(false, "initial_solution: unknown init kind");
  return Solution(0);
}

RunResult Explorer::run(const ExplorerConfig& config) const {
  const auto t0 = std::chrono::steady_clock::now();

  // A token that fired while the run was queued stops it before the
  // (potentially expensive) initial evaluation.
  throw_if_cancelled(config.cancel);

  Rng init_rng(config.seed ^ 0x5851F42D4C957F2DULL);
  Solution initial = initial_solution(config.init, init_rng);

  DseProblem problem(*tg_, arch_, std::move(initial), config.moves,
                     config.cost, config.adaptive_move_mix,
                     config.full_eval, config.batch);

  RunResult result;
  result.initial_metrics = problem.current_metrics();

  AnnealConfig ac;
  ac.seed = config.seed;
  ac.iterations = config.iterations;
  ac.warmup_iterations = config.warmup_iterations;
  ac.schedule = config.schedule;
  ac.freeze_after = config.freeze_after;
  ac.cancel = config.cancel;
  if (config.record_trace) {
    const std::int64_t stride = std::max<std::int64_t>(config.trace_stride, 1);
    ac.on_iteration = [&problem, &result, stride](const IterationStat& s) {
      if (s.iteration % stride != 0) return;
      TraceRow row;
      row.iteration = s.iteration;
      row.cost = s.cost;
      row.best = s.best;
      row.temperature = s.temperature;
      row.n_contexts = problem.current_metrics().n_contexts;
      row.accepted = s.accepted;
      row.warmup = s.warmup;
      result.trace.add(row);
    };
  }

  result.anneal = anneal(problem, ac);
  result.best_solution = problem.best_solution();
  result.best_architecture = problem.best_architecture();
  result.best_metrics = problem.best_metrics();
  result.move_stats = problem.move_stats();

  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return result;
}

std::vector<RunResult> Explorer::run_many(const ExplorerConfig& config,
                                          int n) const {
  RDSE_REQUIRE(n >= 0, "run_many: negative run count");
  std::vector<RunResult> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ExplorerConfig c = config;
    c.seed = config.seed + static_cast<std::uint64_t>(i);
    out.push_back(run(c));
  }
  return out;
}

RunAggregate aggregate_metrics(std::span<const Metrics> metrics,
                               std::span<const double> wall_seconds,
                               TimeNs deadline) {
  RDSE_REQUIRE(!metrics.empty(), "aggregate: no results");
  RDSE_REQUIRE(metrics.size() == wall_seconds.size(),
               "aggregate: metrics/wall size mismatch");
  RunAggregate agg;
  agg.runs = static_cast<int>(metrics.size());
  std::vector<double> makespans;
  makespans.reserve(metrics.size());
  int hits = 0;
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metrics& m = metrics[i];
    makespans.push_back(to_ms(m.makespan));
    agg.mean_init_reconfig_ms += to_ms(m.init_reconfig);
    agg.mean_dyn_reconfig_ms += to_ms(m.dyn_reconfig);
    agg.mean_contexts += m.n_contexts;
    agg.mean_hw_tasks += m.hw_tasks;
    agg.mean_wall_seconds += wall_seconds[i];
    if (deadline > 0 && m.makespan <= deadline) ++hits;
  }
  const auto n = static_cast<double>(metrics.size());
  agg.mean_makespan_ms = mean_of(makespans);
  agg.stddev_makespan_ms = stddev_of(makespans);
  agg.best_makespan_ms = min_of(makespans);
  agg.worst_makespan_ms = max_of(makespans);
  agg.mean_init_reconfig_ms /= n;
  agg.mean_dyn_reconfig_ms /= n;
  agg.mean_contexts /= n;
  agg.mean_hw_tasks /= n;
  agg.mean_wall_seconds /= n;
  agg.deadline_hit_rate = deadline > 0 ? static_cast<double>(hits) / n : 0.0;
  return agg;
}

RunAggregate Explorer::aggregate(const std::vector<RunResult>& results,
                                 TimeNs deadline) {
  std::vector<Metrics> metrics;
  std::vector<double> walls;
  metrics.reserve(results.size());
  walls.reserve(results.size());
  for (const RunResult& r : results) {
    metrics.push_back(r.best_metrics);
    walls.push_back(r.wall_seconds);
  }
  return aggregate_metrics(metrics, walls, deadline);
}

}  // namespace rdse
