#include "core/moves.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rdse {
namespace {

/// Implementation indices of `task` that fit an empty context of `dev`.
std::vector<std::uint32_t> fitting_impls(const Task& task,
                                         const ReconfigurableCircuit& dev) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t k = 0; k < task.hw.size(); ++k) {
    if (task.hw.at(k).clbs <= dev.n_clbs()) out.push_back(k);
  }
  return out;
}

}  // namespace

const char* to_string(MoveKind kind) {
  switch (kind) {
    case MoveKind::kReorderSw: return "m1-reorder-sw";
    case MoveKind::kReassign: return "m2-reassign";
    case MoveKind::kRemoveResource: return "m3-remove-resource";
    case MoveKind::kCreateResource: return "m4-create-resource";
    case MoveKind::kChangeImpl: return "change-impl";
    case MoveKind::kReorderContexts: return "reorder-contexts";
  }
  return "?";
}

bool apply_reorder_sw(const TaskGraph& tg, const Architecture& arch,
                      Solution& sol, TaskId vs, TaskId vd, bool after,
                      Rng& /*rng*/) {
  if (vs == vd) return false;
  const Placement& ps = sol.placement(vs);
  const Placement& pd = sol.placement(vd);
  if (!ps.assigned() || ps.resource != pd.resource) return false;
  if (arch.resource(ps.resource).kind() != ResourceKind::kProcessor) {
    return false;  // §4.2: on an ASIC or RC context no move is performed
  }
  const auto order = sol.processor_order(ps.resource);

  // Index of vd in the order with vs removed.
  std::size_t vd_idx = 0;
  std::size_t vs_idx = 0;
  for (std::size_t i = 0, j = 0; i < order.size(); ++i) {
    if (order[i] == vs) {
      vs_idx = i;
      continue;
    }
    if (order[i] == vd) vd_idx = j;
    ++j;
  }
  std::size_t target = vd_idx + (after ? 1 : 0);

  // Clamp into the window allowed by *direct* same-processor precedence so
  // most draws stay coherent (§4.2); transitive conflicts through other
  // resources are still caught by the cycle check at evaluation.
  std::size_t lo = 0;
  std::size_t hi = order.size() - 1;  // order without vs
  const Digraph& g = tg.digraph();
  auto index_without_vs = [&](TaskId t) {
    std::size_t j = 0;
    for (TaskId u : order) {
      if (u == vs) continue;
      if (u == t) return j;
      ++j;
    }
    RDSE_ASSERT_MSG(false, "task missing from its processor order");
    return j;
  };
  for (EdgeId e : g.in_edges(vs)) {
    const TaskId p = g.edge(e).src;
    if (sol.placement(p).resource == ps.resource &&
        sol.placement(p).context == -1) {
      lo = std::max(lo, index_without_vs(p) + 1);
    }
  }
  for (EdgeId e : g.out_edges(vs)) {
    const TaskId s = g.edge(e).dst;
    if (sol.placement(s).resource == ps.resource &&
        sol.placement(s).context == -1) {
      hi = std::min(hi, index_without_vs(s));
    }
  }
  if (lo > hi) return false;  // direct precedence leaves no slot
  target = std::clamp(target, lo, hi);
  if (target == vs_idx) return false;  // no-op draw
  sol.reposition(vs, target);
  return true;
}

bool apply_reassign(const TaskGraph& tg, const Architecture& arch,
                    Solution& sol, TaskId vs, TaskId vd, Rng& rng) {
  if (vs == vd) return false;
  const Placement ps = sol.placement(vs);
  const Placement pd_before = sol.placement(vd);
  if (!ps.assigned() || !pd_before.assigned()) return false;
  if (ps.resource == pd_before.resource && ps.context == pd_before.context) {
    return false;  // same processor (m1 territory), same context, same ASIC
  }

  const Resource& dest = arch.resource(pd_before.resource);
  switch (dest.kind()) {
    case ResourceKind::kProcessor: {
      if (ps.resource == pd_before.resource) return false;  // m1 territory
      sol.remove_task(vs);
      const auto order = sol.processor_order(pd_before.resource);
      const auto it = std::find(order.begin(), order.end(), vd);
      RDSE_ASSERT(it != order.end());
      const auto base = static_cast<std::size_t>(it - order.begin());
      const std::size_t pos = base + (rng.bernoulli(0.5) ? 1 : 0);
      sol.insert_on_processor(vs, pd_before.resource, pos);
      return true;
    }
    case ResourceKind::kReconfigurable: {
      const Task& task = tg.task(vs);
      if (!task.hw_capable()) return false;
      const auto& dev = arch.reconfigurable(pd_before.resource);
      const auto fits = fitting_impls(task, dev);
      if (fits.empty()) return false;

      // Keep the current implementation when it fits the device, otherwise
      // draw one; the dedicated kChangeImpl move explores the rest.
      std::uint32_t impl = fits[rng.index(fits.size())];
      if (ps.context >= 0 && ps.resource == pd_before.resource &&
          std::find(fits.begin(), fits.end(), ps.impl) != fits.end()) {
        impl = ps.impl;
      }

      sol.remove_task(vs);
      // Removing vs may have collapsed a context on the destination RC:
      // re-read the destination task's placement.
      const Placement pd = sol.placement(vd);
      RDSE_ASSERT(pd.context >= 0);
      const auto ctx = static_cast<std::size_t>(pd.context);
      const std::int32_t used =
          sol.context_clbs(tg, pd.resource, ctx);
      if (used + task.hw.at(impl).clbs <= dev.n_clbs()) {
        sol.insert_in_context(vs, pd.resource, ctx, impl,
                              task.hw.at(impl).clbs);
      } else {
        // §4.3: "another context will be spawned if
        // nCLB(R(vd)) + C(vs) > NCLB".
        const std::size_t fresh = sol.spawn_context_after(pd.resource, ctx);
        sol.insert_in_context(vs, pd.resource, fresh, impl,
                              task.hw.at(impl).clbs);
      }
      return true;
    }
    case ResourceKind::kAsic: {
      const Task& task = tg.task(vs);
      if (!task.hw_capable()) return false;
      sol.remove_task(vs);
      const auto impl =
          static_cast<std::uint32_t>(rng.index(task.hw.size()));
      sol.insert_on_asic(vs, pd_before.resource, impl);
      return true;
    }
  }
  return false;
}

bool apply_reassign_to_resource(const TaskGraph& tg, const Architecture& arch,
                                Solution& sol, TaskId vs, ResourceId target,
                                Rng& rng) {
  const Placement ps = sol.placement(vs);
  if (!ps.assigned() || !arch.alive(target)) return false;
  const Resource& dest = arch.resource(target);
  switch (dest.kind()) {
    case ResourceKind::kProcessor: {
      if (ps.resource == target) return false;  // repositioning is m1
      sol.remove_task(vs);
      const std::size_t size = sol.processor_order(target).size();
      sol.insert_on_processor(vs, target, rng.index(size + 1));
      return true;
    }
    case ResourceKind::kReconfigurable: {
      const Task& task = tg.task(vs);
      if (!task.hw_capable()) return false;
      const auto& dev = arch.reconfigurable(target);
      const auto fits = fitting_impls(task, dev);
      if (fits.empty()) return false;
      const std::uint32_t impl = fits[rng.index(fits.size())];
      sol.remove_task(vs);
      // Draw an existing context or "one past the end" = spawn a new tail
      // context; an overflowing existing choice also spawns (§4.3 rule).
      const std::size_t n_ctx = sol.context_count(target);
      std::size_t ctx = rng.index(n_ctx + 1);
      if (ctx == n_ctx) {
        ctx = sol.spawn_context_after(
            target, n_ctx == 0 ? Solution::kFront : n_ctx - 1);
      } else if (sol.context_clbs(tg, target, ctx) + task.hw.at(impl).clbs >
                 dev.n_clbs()) {
        ctx = sol.spawn_context_after(target, ctx);
      }
      sol.insert_in_context(vs, target, ctx, impl, task.hw.at(impl).clbs);
      return true;
    }
    case ResourceKind::kAsic: {
      const Task& task = tg.task(vs);
      if (!task.hw_capable()) return false;
      if (ps.resource == target) return false;
      sol.remove_task(vs);
      sol.insert_on_asic(vs, target,
                         static_cast<std::uint32_t>(rng.index(task.hw.size())));
      return true;
    }
  }
  return false;
}

bool apply_change_impl(const TaskGraph& tg, const Architecture& arch,
                       Solution& sol, TaskId vs, Rng& rng) {
  const Placement& p = sol.placement(vs);
  if (!p.assigned()) return false;
  const Resource& res = arch.resource(p.resource);
  if (res.kind() == ResourceKind::kProcessor) return false;
  const Task& task = tg.task(vs);
  if (task.hw.size() < 2) return false;

  // Draw a different implementation; for RC tasks it must keep the context
  // within the device capacity (implementation growth does not spawn).
  std::vector<std::uint32_t> options;
  for (std::uint32_t k = 0; k < task.hw.size(); ++k) {
    if (k == p.impl) continue;
    if (res.kind() == ResourceKind::kReconfigurable) {
      const auto& dev = arch.reconfigurable(p.resource);
      const std::int32_t used = sol.context_clbs(
          tg, p.resource, static_cast<std::size_t>(p.context));
      const std::int32_t next =
          used - task.hw.at(p.impl).clbs + task.hw.at(k).clbs;
      if (next > dev.n_clbs()) continue;
    }
    options.push_back(k);
  }
  if (options.empty()) return false;
  const std::uint32_t impl = options[rng.index(options.size())];
  if (res.kind() == ResourceKind::kReconfigurable) {
    sol.set_impl(vs, impl, task.hw.at(impl).clbs);
  } else {
    // ASIC: re-stage the placement to update the implementation.
    const ResourceId asic = p.resource;
    sol.remove_task(vs);
    sol.insert_on_asic(vs, asic, impl);
  }
  return true;
}

bool apply_reorder_contexts(const Architecture& arch, Solution& sol,
                            Rng& rng) {
  std::vector<ResourceId> candidates;
  for (ResourceId rc : arch.reconfigurable_ids()) {
    if (sol.context_count(rc) >= 2) candidates.push_back(rc);
  }
  if (candidates.empty()) return false;
  const ResourceId rc = candidates[rng.index(candidates.size())];
  const std::size_t k = rng.index(sol.context_count(rc) - 1);
  sol.swap_contexts(rc, k, k + 1);
  return true;
}

bool apply_remove_resource(const TaskGraph& tg, Architecture& arch,
                           Solution& sol, TaskId vd, Rng& rng) {
  const Placement pd = sol.placement(vd);
  if (!pd.assigned()) return false;

  // Candidates: live resources holding exactly one task, other than vd's,
  // and never the last processor (software-only tasks need a home).
  std::vector<ResourceId> lone;
  const std::size_t n_proc = arch.processor_ids().size();
  for (ResourceId id : arch.live_ids()) {
    if (id == pd.resource) continue;
    if (sol.tasks_on(id) != 1) continue;
    if (arch.resource(id).kind() == ResourceKind::kProcessor && n_proc <= 1) {
      continue;
    }
    lone.push_back(id);
  }
  if (lone.empty()) return false;
  const ResourceId victim = lone[rng.index(lone.size())];

  // The single task on the victim joins vd's resource (m2 realization).
  TaskId refugee = kInvalidNode;
  for (TaskId t = 0; t < sol.task_count(); ++t) {
    if (sol.resource_of(t) == victim) {
      refugee = t;
      break;
    }
  }
  RDSE_ASSERT(refugee != kInvalidNode);
  if (!apply_reassign(tg, arch, sol, refugee, vd, rng)) {
    return false;
  }
  arch.remove(victim);
  return true;
}

bool apply_create_resource(const TaskGraph& tg, Architecture& arch,
                           Solution& sol, TaskId vs, Rng& rng) {
  const Placement ps = sol.placement(vs);
  if (!ps.assigned()) return false;
  const Task& task = tg.task(vs);

  // Pick a resource kind the task can use.
  std::vector<ResourceKind> kinds{ResourceKind::kProcessor};
  if (task.hw_capable()) {
    kinds.push_back(ResourceKind::kReconfigurable);
    kinds.push_back(ResourceKind::kAsic);
  }
  const ResourceKind kind = kinds[rng.index(kinds.size())];
  const auto slot = static_cast<std::uint32_t>(arch.slot_count());

  switch (kind) {
    case ResourceKind::kProcessor: {
      const ResourceId id =
          arch.add_processor("cpu" + std::to_string(slot));
      sol.remove_task(vs);
      sol.insert_on_processor(vs, id, 0);
      return true;
    }
    case ResourceKind::kReconfigurable: {
      // Clone the geometry of an existing RC when there is one, so the
      // explored systems stay in the same technology family.
      std::int32_t clbs = 1000;
      TimeNs tr = 22'500;
      const auto rcs = arch.reconfigurable_ids();
      if (!rcs.empty()) {
        const auto& proto = arch.reconfigurable(rcs[rng.index(rcs.size())]);
        clbs = proto.n_clbs();
        tr = proto.tr_per_clb();
      }
      const ResourceId id =
          arch.add_reconfigurable("fpga" + std::to_string(slot), clbs, tr);
      const auto fits = fitting_impls(task, arch.reconfigurable(id));
      if (fits.empty()) {
        arch.remove(id);
        return false;
      }
      sol.remove_task(vs);
      const std::size_t ctx = sol.spawn_context_after(id, Solution::kFront);
      const std::uint32_t impl = fits[rng.index(fits.size())];
      sol.insert_in_context(vs, id, ctx, impl, task.hw.at(impl).clbs);
      return true;
    }
    case ResourceKind::kAsic: {
      const ResourceId id = arch.add_asic("asic" + std::to_string(slot));
      sol.remove_task(vs);
      sol.insert_on_asic(
          vs, id, static_cast<std::uint32_t>(rng.index(task.hw.size())));
      return true;
    }
  }
  return false;
}

MoveOutcome generate_move(const TaskGraph& tg, Architecture& arch,
                          Solution& sol, const MoveConfig& config, Rng& rng) {
  const auto n = static_cast<std::int64_t>(tg.task_count());

  // Auxiliary degrees of freedom drawn up front with fixed probabilities.
  if (config.p_change_impl > 0.0 && rng.bernoulli(config.p_change_impl)) {
    const auto vs = static_cast<TaskId>(rng.index(tg.task_count()));
    return MoveOutcome{MoveKind::kChangeImpl,
                       apply_change_impl(tg, arch, sol, vs, rng)};
  }
  if (config.p_reorder_contexts > 0.0 &&
      rng.bernoulli(config.p_reorder_contexts)) {
    return MoveOutcome{MoveKind::kReorderContexts,
                       apply_reorder_contexts(arch, sol, rng)};
  }
  if (config.enable_reassign && config.p_resource_target > 0.0 &&
      rng.bernoulli(config.p_resource_target)) {
    const auto vs = static_cast<TaskId>(rng.index(tg.task_count()));
    const auto ids = arch.live_ids();
    const ResourceId target = ids[rng.index(ids.size())];
    return MoveOutcome{
        MoveKind::kReassign,
        apply_reassign_to_resource(tg, arch, sol, vs, target, rng)};
  }

  // §4.2: draw source and destination indices in [0, N]; index 0 requests
  // an architecture move and its probability is configurable (0 by default).
  const std::int64_t s =
      rng.bernoulli(config.p_zero) ? 0 : rng.uniform_int(1, n);
  const std::int64_t d =
      rng.bernoulli(config.p_zero) ? 0 : rng.uniform_int(1, n);

  if (s == 0 && d == 0) {
    return MoveOutcome{MoveKind::kRemoveResource, false};
  }
  if (s == 0) {
    const auto vd = static_cast<TaskId>(d - 1);
    return MoveOutcome{MoveKind::kRemoveResource,
                       apply_remove_resource(tg, arch, sol, vd, rng)};
  }
  if (d == 0) {
    const auto vs = static_cast<TaskId>(s - 1);
    return MoveOutcome{MoveKind::kCreateResource,
                       apply_create_resource(tg, arch, sol, vs, rng)};
  }

  const auto vs = static_cast<TaskId>(s - 1);
  const auto vd = static_cast<TaskId>(d - 1);
  const Placement& ps = sol.placement(vs);
  const Placement& pd = sol.placement(vd);

  if (ps.resource == pd.resource && ps.context == pd.context) {
    // Same resource. m1 on a processor; null on an ASIC or inside a context.
    if (!config.enable_reorder_sw) {
      return MoveOutcome{MoveKind::kReorderSw, false};
    }
    return MoveOutcome{
        MoveKind::kReorderSw,
        apply_reorder_sw(tg, arch, sol, vs, vd, rng.bernoulli(0.5), rng)};
  }
  if (!config.enable_reassign) {
    return MoveOutcome{MoveKind::kReassign, false};
  }
  return MoveOutcome{MoveKind::kReassign,
                     apply_reassign(tg, arch, sol, vs, vd, rng)};
}

}  // namespace rdse
