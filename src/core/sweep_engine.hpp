#pragma once
/// \file sweep_engine.hpp
/// \brief Deterministic parallel sweeps: shard repeated runs and parameter
/// grids over the worker pool.
///
/// The paper's headline results are *batches* of explorations — Fig. 3
/// averages 100 annealing runs per device size — and each run is
/// independent, so the sweep layer treats design-space exploration as an
/// embarrassingly parallel batch over configurations (the way the
/// microthreaded many-core and BRISC-V DSE toolflows do). Every (point,
/// run) pair becomes one pool job with its own RNG stream derived the same
/// way the serial loops derive it (`config.seed + run`), and results land
/// in pre-sized slots indexed by (point, run): the merged output is
/// bit-identical to the serial path for any thread count — wall-clock
/// times are the only fields that differ.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/explorer.hpp"

namespace rdse {

class Mapper;
struct MapperConfig;
struct MapperResult;

/// One grid point of a sweep: a complete (architecture, exploration config)
/// pair plus presentation metadata. Points are independent — each may carry
/// its own device size, schedule, seed or move mix.
struct SweepPoint {
  std::string label;  ///< e.g. "800 CLBs" or "greedy"
  double x = 0.0;     ///< numeric axis value for tables and plots
  Architecture arch;
  ExplorerConfig config;

  SweepPoint() : arch(Bus(1)) {}
  SweepPoint(std::string label_, double x_, Architecture arch_,
             ExplorerConfig config_)
      : label(std::move(label_)),
        x(x_),
        arch(std::move(arch_)),
        config(std::move(config_)) {}
};

/// A parameterized exploration batch: an axis of points, each explored
/// `runs_per_point` times with seeds config.seed .. config.seed + runs - 1.
struct SweepSpec {
  std::string name;        ///< e.g. "device-size"
  std::string axis_label;  ///< e.g. "FPGA size (CLBs)"
  int runs_per_point = 1;  ///< 0 is valid: spec-only (dry) sweeps
  TimeNs deadline = 0;     ///< constraint for hit-rate aggregation (0 = none)
  std::vector<SweepPoint> points;
};

/// Results of one grid point, runs kept in seed order.
struct SweepPointResult {
  std::string label;
  double x = 0.0;
  /// Zeroed when runs_per_point == 0 (dry/planned sweeps).
  RunAggregate aggregate;
  /// Per-run results in seed order, traces included.
  std::vector<RunResult> runs;
};

struct SweepResult {
  std::string name;
  std::string axis_label;
  TimeNs deadline = 0;
  unsigned threads_used = 0;
  double wall_seconds = 0.0;
  /// One entry per spec point, in spec order.
  std::vector<SweepPointResult> points;
};

/// Shards exploration batches over a util/ThreadPool. Thread count is a
/// throughput knob only: every run's seed is a pure function of its (point,
/// run) index, and results are merged in index order, so any `threads`
/// value — including 1 — produces the same batch, bit-identical to the
/// serial `Explorer::run_many` loops it replaces.
class SweepEngine {
 public:
  /// `threads` == 0 picks the hardware concurrency (at least 1).
  explicit SweepEngine(unsigned threads = 0) : threads_(threads) {}

  /// Parallel counterpart of Explorer::run_many: `n` independent runs with
  /// seeds config.seed .. config.seed + n - 1 dispatched as pool jobs and
  /// returned in seed order. `n` == 0 returns an empty vector; `n` < 0
  /// throws Error. Any job failure propagates as the job's exception after
  /// the batch barrier.
  [[nodiscard]] std::vector<RunResult> run_many(const Explorer& explorer,
                                                const ExplorerConfig& config,
                                                int n) const;

  /// Mapper-portfolio counterpart of run_many: `n` independent runs of one
  /// registered mapper with seeds config.seed .. config.seed + n - 1,
  /// dispatched as pool jobs and returned in seed order — bit-identical to
  /// the serial loop for any thread count. Deterministic mappers still run
  /// once per seed (their results are identical by contract, which the
  /// property suite asserts).
  [[nodiscard]] std::vector<MapperResult> run_mapper_many(
      const Mapper& mapper, const TaskGraph& tg, const Architecture& arch,
      const MapperConfig& config, int n) const;

  /// Run every (point, run) pair of the sweep as one pool job. The task
  /// graph must outlive the call; each point's architecture is copied into
  /// its runs. Per-point aggregates use `spec.deadline`.
  [[nodiscard]] SweepResult run(const TaskGraph& tg,
                                const SweepSpec& spec) const;

  /// Effective worker count a run with this configuration would use for
  /// `jobs` parallel jobs.
  [[nodiscard]] unsigned resolved_threads(std::size_t jobs) const;

 private:
  unsigned threads_;
};

/// The Fig. 3 study as a spec: one point per device size, each a
/// CPU + FPGA platform built with make_cpu_fpga_architecture.
[[nodiscard]] SweepSpec device_size_sweep(std::span<const std::int32_t> sizes,
                                          TimeNs tr_per_clb,
                                          std::int64_t bus_bytes_per_second,
                                          const ExplorerConfig& config,
                                          int runs_per_point, TimeNs deadline);

/// A cooling-schedule ablation axis over one fixed architecture.
[[nodiscard]] SweepSpec schedule_sweep(std::span<const ScheduleKind> kinds,
                                       const Architecture& arch,
                                       const ExplorerConfig& config,
                                       int runs_per_point, TimeNs deadline);

}  // namespace rdse
