#pragma once
/// \file motion_detection.hpp
/// \brief The paper's benchmark: the motion-detection (object labeling)
/// application of Ben Chehida & Auguin [6], reconstructed from every
/// aggregate the paper publishes about it.
///
/// The original per-task EPICURE estimates (ARM922 + Virtex-E) are project
/// data that were never published; this module is the documented synthetic
/// substitution (see DESIGN.md §2). The reconstruction pins down:
///  - 28 tasks with the exact §5 topology: a 7-node chain, then a 7-node
///    chain in parallel with [6-chain -> (2-chain || 1 node) -> 5-chain],
///    which yields exactly 3 * C(21,7) = 348,840 total orders;
///  - software times summing to exactly 76.4 ms (the published ARM922
///    software-only execution time);
///  - a 40 ms real-time constraint per image;
///  - 5-6 Pareto-dominant hardware implementations per function (the
///    published EPICURE estimate count), with areas such that ~9 random
///    hardware tasks occupy on the order of 1000 CLBs (the published
///    initial-solution anecdote: 9 tasks, 995 CLBs);
///  - reconfiguration time tR = 22.5 us per CLB (published).

#include "model/task_graph.hpp"

namespace rdse {

/// Reconfiguration time per CLB of the paper's Virtex-E target.
constexpr TimeNs kMotionDetectionTrPerClb = 22'500;  // 22.5 us

/// Shared-bus throughput used for transfer-time estimation (bytes/second).
constexpr std::int64_t kMotionDetectionBusRate = 50'000'000;  // 50 MB/s

/// Build the 28-task motion-detection application (deadline = 40 ms).
[[nodiscard]] Application make_motion_detection_app();

}  // namespace rdse
