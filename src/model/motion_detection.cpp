#include "model/motion_detection.hpp"

#include "util/assert.hpp"

namespace rdse {
namespace {

/// Per-task calibration record. Software milliseconds are exact (they sum to
/// 76.4); hardware Pareto sets are generated with the EPICURE-like area/time
/// model of make_pareto_impls (areas base * 1.5^i, times shrinking with
/// area^0.6 from the base speedup).
struct Spec {
  const char* name;
  const char* func;
  double sw_ms;
  std::int32_t base_clbs;
  double base_speedup;
  std::size_t impl_count;  // 5 or 6, as published
};

// Head chain H1..H7: frame acquisition and pixel-level motion mask.
// Branch A (7-node chain): connected-component labeling pipeline.
// Branch B (6-node chain): edge/contour analysis ...
//   ... then P (2-chain) || Q (1 node), then T (5-chain): region merging,
//   background update and decision/output stages.
// Calibration rationale (see DESIGN.md §2): the smallest implementations of
// the ~18 profitable tasks sum to ~600 CLBs, so the optimized mappings carry
// ~13 ms of total reconfiguration at tR = 22.5 us/CLB — small enough to reach
// the published ~18 ms optimum, large enough that temporal partitioning
// matters. A random 9-task partition with uniform implementation draws
// occupies ~1000 CLBs (the published 995-CLB anecdote). A few heavy
// functions (labeling, morphology, gradients) exceed small devices, which
// recreates Fig. 3's poor low-end behaviour.
constexpr Spec kSpecs[] = {
    // H: 24.7 ms
    {"acquire_dma", "IO", 1.2, 8, 3.0, 5},
    {"subsample", "SUB", 2.8, 18, 8.0, 5},
    {"frame_diff", "DIFF", 3.5, 20, 10.0, 6},
    {"threshold", "THR", 2.1, 12, 9.0, 5},
    {"erosion", "ERO", 6.8, 60, 12.0, 6},
    {"dilation", "DIL", 6.4, 60, 12.0, 6},
    {"motion_mask", "MASK", 1.9, 15, 7.0, 5},
    // A: 20.5 ms
    {"labeling_pass1", "LAB1", 8.2, 120, 9.0, 6},
    {"labeling_merge", "LAB2", 3.1, 40, 6.0, 5},
    {"histogram", "HIST", 2.4, 22, 8.0, 5},
    {"size_filter", "FILT", 1.8, 14, 6.0, 5},
    {"centroid", "CENT", 1.3, 14, 5.0, 5},
    {"bounding_box", "BBOX", 2.2, 16, 6.0, 5},
    {"object_tracking", "TRK", 1.5, 20, 4.0, 5},
    // B: 18.8 ms
    {"gradient_x", "GRADX", 5.6, 48, 11.0, 6},
    {"gradient_y", "GRADY", 4.9, 48, 11.0, 6},
    {"edge_magnitude", "EMAG", 3.2, 22, 9.0, 5},
    {"edge_threshold", "ETHR", 2.6, 12, 8.0, 5},
    {"contour_trace", "CTRC", 1.4, 24, 5.0, 5},
    {"contour_filter", "CFLT", 1.1, 14, 5.0, 5},
    // P (2-chain) and Q (1 node): 5.6 ms
    {"region_merge", "RMRG", 2.3, 22, 6.0, 5},
    {"region_stats", "RSTA", 1.7, 16, 6.0, 5},
    {"background_update", "BGUP", 1.6, 24, 7.0, 5},
    // T: 6.8 ms
    {"collision_check", "COLL", 1.9, 18, 6.0, 5},
    {"trajectory", "TRAJ", 1.5, 16, 5.0, 5},
    {"alarm_decision", "ALRM", 1.2, 10, 4.0, 5},
    {"overlay_render", "OVLY", 1.0, 14, 5.0, 5},
    {"output_format", "OUT", 1.2, 12, 3.0, 5},
};

struct EdgeSpec {
  std::uint32_t src;
  std::uint32_t dst;
  std::int64_t bytes;
};

// Transfer sizes follow a QCIF (176x144, 8-bit) processing story: full
// frames early, sub-sampled frames after "subsample", packed binary masks
// after "threshold", then shrinking feature records.
constexpr EdgeSpec kEdges[] = {
    // H chain: 0..6
    {0, 1, 25344}, {1, 2, 6336}, {2, 3, 6336}, {3, 4, 792},
    {4, 5, 792},   {5, 6, 792},
    // fork from the mask
    {6, 7, 792},    // H7 -> A1 (binary mask to labeling)
    {6, 14, 6336},  // H7 -> B1 (masked grey image to gradient)
    // A chain: 7..13
    {7, 8, 3168}, {8, 9, 1024}, {9, 10, 512}, {10, 11, 512},
    {11, 12, 512}, {12, 13, 256},
    // B chain: 14..19
    {14, 15, 6336}, {15, 16, 6336}, {16, 17, 3168}, {17, 18, 792},
    {18, 19, 512},
    // B -> (P || Q)
    {19, 20, 512},   // -> region_merge (P1)
    {19, 22, 6336},  // -> background_update (Q)
    // P chain: 20..21
    {20, 21, 512},
    // join into T
    {21, 23, 256},  // P2 -> T1
    {22, 23, 1024}, // Q  -> T1
    // T chain: 23..27
    {23, 24, 256}, {24, 25, 128}, {25, 26, 128}, {26, 27, 256},
};

}  // namespace

Application make_motion_detection_app() {
  Application app;
  app.name = "motion_detection";
  app.deadline = from_ms(40.0);

  for (const Spec& s : kSpecs) {
    Task t;
    t.name = s.name;
    t.functionality = s.func;
    t.sw_time = from_ms(s.sw_ms);
    t.hw = make_pareto_impls(t.sw_time, s.base_clbs, s.base_speedup,
                             s.impl_count, /*ratio=*/1.7, /*gamma=*/0.55);
    RDSE_ASSERT_MSG(t.hw.size() == s.impl_count,
                    "motion detection: Pareto generation collapsed a point");
    app.graph.add_task(std::move(t));
  }
  for (const EdgeSpec& e : kEdges) {
    app.graph.add_comm(e.src, e.dst, e.bytes);
  }
  app.graph.validate();
  RDSE_ASSERT(app.graph.task_count() == 28);
  RDSE_ASSERT(app.graph.total_sw_time() == from_ms(76.4));
  return app;
}

}  // namespace rdse
