#pragma once
/// \file task_graph.hpp
/// \brief The application model of §3.1: an acyclic precedence graph
/// G = <V, E> of coarse-grain tasks.
///
/// Each node carries a functionality name, an estimated software execution
/// time tsw, and a Pareto set of hardware implementations (CLB count C(v) and
/// hardware time thw per implementation). Each edge carries the amount of
/// data transferred q_ij; the actual transfer time depends on the
/// communication link (arch/bus.hpp).

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "model/implementation.hpp"
#include "util/assert.hpp"
#include "util/time.hpp"

namespace rdse {

using TaskId = NodeId;

/// One coarse-grain computation node.
struct Task {
  std::string name;           ///< unique instance name ("erosion")
  std::string functionality;  ///< function kind ("ERO"); F(v) in the paper
  TimeNs sw_time = 0;         ///< execution time estimate on the processor
  ImplementationSet hw;       ///< area/time points; empty = software-only

  [[nodiscard]] bool hw_capable() const { return !hw.empty(); }
};

/// One data dependency; its index equals the EdgeId in digraph().
struct CommEdge {
  TaskId src = kInvalidNode;
  TaskId dst = kInvalidNode;
  std::int64_t bytes = 0;  ///< q_ij, amount of data transferred
};

/// Immutable-after-build application graph with validation.
class TaskGraph {
 public:
  /// Add a task; returns its id (dense, insertion order).
  TaskId add_task(Task task);

  /// Add a data dependency src -> dst carrying `bytes` of data. At most one
  /// communication edge per ordered pair. Throws if it closes a cycle.
  EdgeId add_comm(TaskId src, TaskId dst, std::int64_t bytes);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] std::size_t comm_count() const { return comms_.size(); }
  // Inner loops of evaluation resolve tasks and transfers per edge; keep
  // these call-free.
  [[nodiscard]] const Task& task(TaskId id) const {
    RDSE_REQUIRE(id < tasks_.size(), "TaskGraph::task: id out of range");
    return tasks_[id];
  }
  [[nodiscard]] const CommEdge& comm(EdgeId id) const {
    RDSE_REQUIRE(id < comms_.size(), "TaskGraph::comm: id out of range");
    return comms_[id];
  }
  [[nodiscard]] const Digraph& digraph() const { return graph_; }

  /// Sum of software times over all tasks: the software-only makespan on a
  /// single processor (ignoring intra-processor communication, which is
  /// free) — the paper's 76.4 ms reference point.
  [[nodiscard]] TimeNs total_sw_time() const;

  /// Number of hardware-capable tasks.
  [[nodiscard]] std::size_t hw_capable_count() const;

  /// Full structural validation (acyclicity, positive times, unique names);
  /// throws rdse::Error with a description on failure.
  void validate() const;

 private:
  std::vector<Task> tasks_;
  std::vector<CommEdge> comms_;
  Digraph graph_;
};

/// A complete benchmark application: graph plus its real-time constraint.
struct Application {
  std::string name;
  TaskGraph graph;
  TimeNs deadline = 0;  ///< performance constraint (0 = none)
};

}  // namespace rdse
