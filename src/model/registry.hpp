#pragma once
/// \file registry.hpp
/// \brief Named application models shared by every front end.
///
/// The `rdse` CLI and the `rdse serve` daemon both select models by name
/// ("--model motion", {"model": "motion"}); this registry is the single
/// place that maps those names to a built Application plus the platform
/// parameters (reconfiguration time per CLB, bus throughput) that the
/// CPU+FPGA architecture factory needs.

#include <cstdint>
#include <string>

#include "model/task_graph.hpp"

namespace rdse {

/// A named application model with its platform parameters.
struct ModelSpec {
  Application app;
  TimeNs tr_per_clb = 0;
  std::int64_t bus_bytes_per_second = 0;
};

/// Comma-separated list of registered model names (for error messages and
/// usage text).
[[nodiscard]] const std::string& known_model_names();

/// Build the model registered under `name`; throws Error (naming the known
/// models) when the name is not registered.
[[nodiscard]] ModelSpec load_model_spec(const std::string& name);

}  // namespace rdse
