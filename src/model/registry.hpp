#pragma once
/// \file registry.hpp
/// \brief Named application models shared by every front end.
///
/// The `rdse` CLI and the `rdse serve` daemon both select models by name
/// ("--model motion", {"model": "motion"}); this registry is the single
/// place that maps those names to a built Application plus the platform
/// parameters (reconfiguration time per CLB, bus throughput) that the
/// CPU+FPGA architecture factory needs.

#include <cstdint>
#include <string>

#include "model/task_graph.hpp"

namespace rdse {

/// A named application model with its platform parameters.
struct ModelSpec {
  Application app;
  TimeNs tr_per_clb = 0;
  std::int64_t bus_bytes_per_second = 0;
};

/// Comma-separated list of registered model names (for error messages and
/// usage text).
[[nodiscard]] const std::string& known_model_names();

/// Validate a model name and return its canonical spelling without building
/// the application ("motion_detection" -> "motion", "synthetic:0500" ->
/// "synthetic:500") — what request normalization and cache keys use. Throws
/// Error (naming the known models) on unknown names or bad synthetic
/// sizes.
[[nodiscard]] std::string canonical_model_name(const std::string& name);

/// Build the model registered under `name` (canonicalized first); throws
/// Error (naming the known models) when the name is not registered.
/// Registered families: "motion" (the paper's 28-task motion-detection
/// application; alias "motion_detection") and "synthetic:<tasks>" — a
/// deterministic random layered DAG of the given size, identical across
/// every front end for a fixed task count.
[[nodiscard]] ModelSpec load_model_spec(const std::string& name);

}  // namespace rdse
