#include "model/implementation.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rdse {

ImplementationSet ImplementationSet::pareto(
    std::vector<HwImplementation> points) {
  for (const auto& p : points) {
    RDSE_REQUIRE(p.clbs > 0, "ImplementationSet: non-positive area");
    RDSE_REQUIRE(p.time > 0, "ImplementationSet: non-positive time");
  }
  std::sort(points.begin(), points.end(), [](const auto& a, const auto& b) {
    return a.clbs != b.clbs ? a.clbs < b.clbs : a.time < b.time;
  });
  ImplementationSet set;
  for (const auto& p : points) {
    // Keep p only if it is strictly faster than everything smaller.
    if (!set.impls_.empty()) {
      if (p.time >= set.impls_.back().time) {
        continue;  // dominated by (or tied with) a smaller implementation
      }
      if (p.clbs == set.impls_.back().clbs) {
        set.impls_.back() = p;  // same area, strictly faster
        continue;
      }
    }
    set.impls_.push_back(p);
  }
  return set;
}

std::optional<std::size_t> ImplementationSet::best_under_area(
    std::int32_t max_clbs) const {
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < impls_.size(); ++i) {
    if (impls_[i].clbs <= max_clbs) {
      best = i;  // sorted by area; later fitting entries are faster
    }
  }
  return best;
}

std::size_t ImplementationSet::smallest() const {
  RDSE_REQUIRE(!impls_.empty(), "ImplementationSet::smallest: empty set");
  return 0;
}

std::size_t ImplementationSet::fastest() const {
  RDSE_REQUIRE(!impls_.empty(), "ImplementationSet::fastest: empty set");
  return impls_.size() - 1;
}

std::int32_t ImplementationSet::min_clbs() const {
  if (impls_.empty()) return INT32_MAX;
  return impls_.front().clbs;
}

ImplementationSet make_pareto_impls(TimeNs sw_time, std::int32_t base_clbs,
                                    double base_speedup, std::size_t count,
                                    double ratio, double gamma) {
  RDSE_REQUIRE(sw_time > 0, "make_pareto_impls: non-positive sw time");
  RDSE_REQUIRE(base_clbs > 0, "make_pareto_impls: non-positive base area");
  RDSE_REQUIRE(base_speedup >= 1.0, "make_pareto_impls: speedup < 1");
  RDSE_REQUIRE(count >= 1, "make_pareto_impls: empty set requested");
  RDSE_REQUIRE(ratio > 1.0, "make_pareto_impls: ratio must exceed 1");
  std::vector<HwImplementation> points;
  points.reserve(count);
  double area = static_cast<double>(base_clbs);
  for (std::size_t i = 0; i < count; ++i) {
    const double rel_area = area / static_cast<double>(base_clbs);
    const double speedup = base_speedup * std::pow(rel_area, gamma);
    auto time = static_cast<TimeNs>(
        std::llround(static_cast<double>(sw_time) / speedup));
    time = std::max<TimeNs>(time, 1);
    points.push_back(HwImplementation{
        static_cast<std::int32_t>(std::lround(area)), time});
    area *= ratio;
  }
  return ImplementationSet::pareto(std::move(points));
}

}  // namespace rdse
