#include "model/generators.hpp"

#include "util/assert.hpp"

namespace rdse {

Application random_application(const AppGenParams& params, Rng& rng) {
  RDSE_REQUIRE(params.sw_ms_lo > 0 && params.sw_ms_hi >= params.sw_ms_lo,
               "random_application: bad sw time range");
  Application app;
  app.name = "synthetic";
  const Digraph topo = random_layered_dag(params.dag, rng);

  for (NodeId v = 0; v < topo.node_count(); ++v) {
    Task t;
    t.name = "task" + std::to_string(v);
    t.functionality = "F" + std::to_string(v);
    t.sw_time = from_ms(rng.uniform_real(params.sw_ms_lo, params.sw_ms_hi));
    if (rng.bernoulli(params.hw_capable_fraction)) {
      const auto base_clbs = static_cast<std::int32_t>(
          rng.uniform_int(params.base_clbs_lo, params.base_clbs_hi));
      const double speedup =
          rng.uniform_real(params.base_speedup_lo, params.base_speedup_hi);
      const auto count = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(params.impl_count_lo),
          static_cast<std::int64_t>(params.impl_count_hi)));
      t.hw = make_pareto_impls(t.sw_time, base_clbs, speedup, count);
    }
    app.graph.add_task(std::move(t));
  }
  for (EdgeId e = 0; e < topo.edge_capacity(); ++e) {
    if (!topo.edge_alive(e)) continue;
    const auto& ed = topo.edge(e);
    app.graph.add_comm(ed.src, ed.dst,
                       rng.uniform_int(params.bytes_lo, params.bytes_hi));
  }
  app.deadline = static_cast<TimeNs>(
      static_cast<double>(app.graph.total_sw_time()) * params.deadline_slack);
  app.graph.validate();
  return app;
}

}  // namespace rdse
