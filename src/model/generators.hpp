#pragma once
/// \file generators.hpp (model)
/// \brief Synthetic application generator for property tests and the
/// scalability study (EXP-S1): random layered task graphs with plausible
/// software times, communication volumes and Pareto implementation sets.

#include "graph/generators.hpp"
#include "model/task_graph.hpp"
#include "util/rng.hpp"

namespace rdse {

struct AppGenParams {
  LayeredDagParams dag;                 ///< topology parameters
  double sw_ms_lo = 0.5;                ///< per-task software time range (ms)
  double sw_ms_hi = 8.0;
  double hw_capable_fraction = 1.0;     ///< share of tasks with HW variants
  std::int32_t base_clbs_lo = 20;       ///< smallest-implementation area
  std::int32_t base_clbs_hi = 90;
  double base_speedup_lo = 3.0;         ///< speedup of smallest impl vs SW
  double base_speedup_hi = 12.0;
  std::size_t impl_count_lo = 5;        ///< Pareto points per function
  std::size_t impl_count_hi = 6;
  std::int64_t bytes_lo = 128;          ///< per-edge transfer volume
  std::int64_t bytes_hi = 16384;
  double deadline_slack = 0.5;          ///< deadline = slack * total SW time
};

/// Generate a random application; deterministic given rng state.
[[nodiscard]] Application random_application(const AppGenParams& params,
                                             Rng& rng);

}  // namespace rdse
