#pragma once
/// \file implementation.hpp
/// \brief Hardware implementation variants of a task function.
///
/// §5 of the paper: "several estimates are provided for each task on the
/// FPGA, thus allowing exploration of the trade-off between number of CLBs
/// and execution time... The node implementations considered form a set of
/// dominant solutions in the area-time domain" (5 or 6 synthesized solutions
/// per function). During annealing, a dedicated move picks one implementation
/// per hardware-mapped node.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace rdse {

/// One synthesized area/time point for a function.
struct HwImplementation {
  std::int32_t clbs = 0;  ///< combinational logic blocks occupied
  TimeNs time = 0;        ///< execution time on the reconfigurable circuit
};

/// A Pareto-dominant set of implementations, sorted by increasing area
/// (hence strictly decreasing execution time).
class ImplementationSet {
 public:
  ImplementationSet() = default;

  /// Build from arbitrary points: dominated and duplicate points are
  /// removed, the rest sorted by area. Throws if any point is non-positive.
  static ImplementationSet pareto(std::vector<HwImplementation> points);

  [[nodiscard]] bool empty() const { return impls_.empty(); }
  [[nodiscard]] std::size_t size() const { return impls_.size(); }
  [[nodiscard]] const HwImplementation& at(std::size_t i) const {
    RDSE_REQUIRE(i < impls_.size(), "ImplementationSet::at: index out of range");
    return impls_[i];
  }
  [[nodiscard]] std::span<const HwImplementation> all() const {
    return impls_;
  }

  /// Index of the fastest implementation with clbs <= max_clbs
  /// (i.e. the largest fitting one), or nullopt if none fits.
  [[nodiscard]] std::optional<std::size_t> best_under_area(
      std::int32_t max_clbs) const;

  /// Smallest-area implementation index (0) — only valid when non-empty.
  [[nodiscard]] std::size_t smallest() const;
  /// Fastest (largest-area) implementation index — only valid if non-empty.
  [[nodiscard]] std::size_t fastest() const;

  /// Smallest area in the set (INT32_MAX when empty).
  [[nodiscard]] std::int32_t min_clbs() const;

 private:
  std::vector<HwImplementation> impls_;
};

/// Generate a synthetic Pareto set the way the EPICURE estimates behave:
/// `count` points with areas base_clbs * ratio^i and times
/// sw_time / (base_speedup * (area/base)^gamma). Used by the calibrated
/// motion-detection model and the synthetic application generator.
[[nodiscard]] ImplementationSet make_pareto_impls(TimeNs sw_time,
                                                  std::int32_t base_clbs,
                                                  double base_speedup,
                                                  std::size_t count,
                                                  double ratio = 1.5,
                                                  double gamma = 0.6);

}  // namespace rdse
