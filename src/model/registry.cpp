#include "model/registry.hpp"

#include <algorithm>
#include <charconv>

#include "model/generators.hpp"
#include "model/motion_detection.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace rdse {

namespace {

constexpr std::int64_t kSyntheticMinTasks = 2;
constexpr std::int64_t kSyntheticMaxTasks = 5'000;

/// Bus rate of the synthetic family — what the scalability bench uses, so
/// "synthetic:120" reproduces its 120-task model family.
constexpr std::int64_t kSyntheticBusRate = 50'000'000;

/// Parse the task count of a "synthetic:N" name; throws on anything that
/// is not a whole-token integer in range.
std::int64_t parse_synthetic_tasks(const std::string& name) {
  const std::string digits = name.substr(std::string("synthetic:").size());
  std::int64_t tasks = 0;
  const auto res = std::from_chars(digits.data(),
                                   digits.data() + digits.size(), tasks);
  if (res.ec != std::errc() || res.ptr != digits.data() + digits.size() ||
      tasks < kSyntheticMinTasks || tasks > kSyntheticMaxTasks) {
    throw Error("model '" + name + "': task count must be an integer in [" +
                std::to_string(kSyntheticMinTasks) + ", " +
                std::to_string(kSyntheticMaxTasks) + "]");
  }
  return tasks;
}

}  // namespace

const std::string& known_model_names() {
  static const std::string kNames =
      "motion (alias: motion_detection), synthetic:<tasks> (" +
      std::to_string(kSyntheticMinTasks) + ".." +
      std::to_string(kSyntheticMaxTasks) + ")";
  return kNames;
}

std::string canonical_model_name(const std::string& name) {
  if (name == "motion" || name == "motion_detection") return "motion";
  if (name.rfind("synthetic:", 0) == 0) {
    return "synthetic:" + std::to_string(parse_synthetic_tasks(name));
  }
  throw Error("unknown model '" + name +
              "' (known models: " + known_model_names() + ")");
}

ModelSpec load_model_spec(const std::string& name) {
  const std::string canonical = canonical_model_name(name);
  if (canonical == "motion") {
    return ModelSpec{make_motion_detection_app(), kMotionDetectionTrPerClb,
                     kMotionDetectionBusRate};
  }
  // synthetic:<tasks> — a deterministic member of the generator family:
  // the graph is a pure function of the task count, so every front end
  // (CLI, bench matrix, serve) builds bit-identical models.
  const std::int64_t tasks = parse_synthetic_tasks(canonical);
  AppGenParams params;
  params.dag.node_count = static_cast<std::size_t>(tasks);
  params.dag.max_width =
      std::max<std::size_t>(3, static_cast<std::size_t>(tasks) / 8);
  params.hw_capable_fraction = 0.8;
  Rng rng(split_stream_seed(0x53594E5448ULL,
                            static_cast<std::uint64_t>(tasks)));
  ModelSpec spec{random_application(params, rng), from_us(10.0),
                 kSyntheticBusRate};
  spec.app.name = canonical;
  return spec;
}

}  // namespace rdse
