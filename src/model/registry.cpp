#include "model/registry.hpp"

#include "model/motion_detection.hpp"
#include "util/assert.hpp"

namespace rdse {

const std::string& known_model_names() {
  static const std::string kNames = "motion";
  return kNames;
}

ModelSpec load_model_spec(const std::string& name) {
  if (name == "motion") {
    return ModelSpec{make_motion_detection_app(), kMotionDetectionTrPerClb,
                     kMotionDetectionBusRate};
  }
  throw Error("unknown model '" + name +
              "' (known models: " + known_model_names() + ")");
}

}  // namespace rdse
