#include "model/task_graph.hpp"

#include <set>

#include "graph/topo.hpp"
#include "util/assert.hpp"

namespace rdse {

TaskId TaskGraph::add_task(Task task) {
  RDSE_REQUIRE(task.sw_time > 0, "TaskGraph: task '" + task.name +
                                     "' must have a positive software time");
  tasks_.push_back(std::move(task));
  const NodeId node = graph_.add_node();
  RDSE_ASSERT(node == tasks_.size() - 1);
  return node;
}

EdgeId TaskGraph::add_comm(TaskId src, TaskId dst, std::int64_t bytes) {
  RDSE_REQUIRE(src < task_count() && dst < task_count(),
               "TaskGraph::add_comm: task id out of range");
  RDSE_REQUIRE(bytes >= 0, "TaskGraph::add_comm: negative byte count");
  RDSE_REQUIRE(!graph_.has_edge(src, dst),
               "TaskGraph::add_comm: duplicate edge");
  RDSE_REQUIRE(!reaches(graph_, dst, src),
               "TaskGraph::add_comm: edge would create a cycle");
  const EdgeId id = graph_.add_edge(src, dst);
  comms_.push_back(CommEdge{src, dst, bytes});
  RDSE_ASSERT(id == comms_.size() - 1);
  return id;
}

TimeNs TaskGraph::total_sw_time() const {
  TimeNs total = 0;
  for (const Task& t : tasks_) {
    total += t.sw_time;
  }
  return total;
}

std::size_t TaskGraph::hw_capable_count() const {
  std::size_t n = 0;
  for (const Task& t : tasks_) {
    n += t.hw_capable() ? 1 : 0;
  }
  return n;
}

void TaskGraph::validate() const {
  RDSE_REQUIRE(task_count() > 0, "TaskGraph: no tasks");
  RDSE_REQUIRE(is_acyclic(graph_), "TaskGraph: precedence graph is cyclic");
  std::set<std::string> names;
  for (const Task& t : tasks_) {
    RDSE_REQUIRE(!t.name.empty(), "TaskGraph: task with empty name");
    RDSE_REQUIRE(names.insert(t.name).second,
                 "TaskGraph: duplicate task name '" + t.name + "'");
    RDSE_REQUIRE(t.sw_time > 0,
                 "TaskGraph: task '" + t.name + "' has non-positive sw time");
  }
  for (const CommEdge& c : comms_) {
    RDSE_REQUIRE(c.src < task_count() && c.dst < task_count(),
                 "TaskGraph: dangling communication edge");
    RDSE_REQUIRE(c.bytes >= 0, "TaskGraph: negative transfer size");
  }
}

}  // namespace rdse
