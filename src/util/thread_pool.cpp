#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace rdse {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    w.join();
  }
}

void ThreadPool::submit(std::function<void()> job) {
  RDSE_REQUIRE(job != nullptr, "ThreadPool: null job");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RDSE_REQUIRE(!stopping_, "ThreadPool: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ with a drained queue
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job();
    } catch (const std::exception& e) {
      // A raw submit() job has nowhere to deliver its exception; losing the
      // worker (std::terminate) would be worse. parallel_for_index() jobs
      // never reach this: they catch and rethrow on the caller's thread.
      log_error("ThreadPool: uncaught exception in job: ", e.what());
    } catch (...) {
      log_error("ThreadPool: uncaught non-standard exception in job");
    }
  }
}

void ThreadPool::parallel_for_index(
    std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  struct Barrier {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr first_error;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = count;

  for (std::size_t i = 0; i < count; ++i) {
    submit([barrier, &fn, i] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(barrier->mutex);
      if (error && !barrier->first_error) {
        barrier->first_error = error;
      }
      if (--barrier->remaining == 0) {
        barrier->done.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(barrier->mutex);
  barrier->done.wait(lock, [&] { return barrier->remaining == 0; });
  if (barrier->first_error) {
    std::rethrow_exception(barrier->first_error);
  }
}

}  // namespace rdse
