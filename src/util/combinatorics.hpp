#pragma once
/// \file combinatorics.hpp
/// \brief Exact counting utilities for the solution-space analysis of §5.
///
/// The paper sizes the design space by counting (a) the linear extensions of
/// the application precedence graph (number of admissible total orders) and
/// (b) the ways of splitting an execution order into run-time contexts.
/// These are binomial-coefficient computations; we carry them out in 128-bit
/// arithmetic with explicit overflow detection so that a count is either
/// exact or an error — never silently wrapped.

#include <cstdint>
#include <string>

#include "util/assert.hpp"

namespace rdse {

/// Unsigned 128-bit integer used for exact combinatorial counts.
using U128 = unsigned __int128;

/// Render a U128 in decimal (no locale, no separators).
[[nodiscard]] std::string u128_to_string(U128 v);

/// Render a U128 in decimal with thousands separators ("7,142,499,000").
[[nodiscard]] std::string u128_to_string_grouped(U128 v);

/// a * b with overflow check; throws rdse::Error on overflow.
[[nodiscard]] U128 checked_mul(U128 a, U128 b);

/// a + b with overflow check; throws rdse::Error on overflow.
[[nodiscard]] U128 checked_add(U128 a, U128 b);

/// Exact binomial coefficient C(n, k); throws on 128-bit overflow.
[[nodiscard]] U128 binomial(std::uint64_t n, std::uint64_t k);

/// Exact factorial n!; throws on 128-bit overflow (n <= 33 fits).
[[nodiscard]] U128 factorial(std::uint64_t n);

/// Number of interleavings of two sequences of lengths a and b that preserve
/// the internal order of each: C(a + b, a).
[[nodiscard]] U128 interleavings(std::uint64_t a, std::uint64_t b);

/// Number of ways to choose `changes` context-change positions among `n`
/// slots: the paper's "k changes of context" count for an n-node chain,
/// C(n, changes) (§5 uses C(28,2) = 378 and C(28,6) = 376,740).
[[nodiscard]] U128 context_change_combinations(std::uint64_t n,
                                               std::uint64_t changes);

}  // namespace rdse
