#pragma once
/// \file ascii_plot.hpp
/// \brief Terminal line plots for the figure-reproduction benches.
///
/// The paper's evaluation consists of two figures (execution-time traces and
/// a device-size sweep). The bench binaries print the underlying data as
/// tables *and* as ASCII plots so the curve shapes can be eyeballed directly
/// in CI logs without a plotting stack.

#include <string>
#include <vector>

namespace rdse {

/// One named series of (x, y) points; x must be non-decreasing.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

/// Plot configuration.
struct PlotOptions {
  int width = 72;    ///< plot area width in characters (>= 16)
  int height = 18;   ///< plot area height in characters (>= 4)
  std::string x_label;
  std::string y_label;
  bool y_from_zero = false;  ///< force the y axis to start at zero
};

/// Render one or more series into a character grid with axes and a legend.
[[nodiscard]] std::string render_plot(const std::vector<Series>& series,
                                      const PlotOptions& options);

/// Compact single-line sparkline of a series (levels rendered with '.',
/// ':', '-', '=', '#'); used in iteration-trace summaries.
[[nodiscard]] std::string sparkline(const std::vector<double>& values,
                                    int width = 64);

}  // namespace rdse
