#include "util/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace rdse {

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  RDSE_REQUIRE(!columns_.empty(), "Table: need at least one column");
}

Table& Table::row() {
  RDSE_REQUIRE(rows_.empty() || rows_.back().size() == columns_.size(),
               "Table: previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(columns_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  RDSE_REQUIRE(!rows_.empty(), "Table: call row() before cell()");
  RDSE_REQUIRE(rows_.back().size() < columns_.size(),
               "Table: too many cells in row");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }

Table& Table::cell(double value, int decimals) {
  return cell(format_double(value, decimals));
}

const std::string& Table::at(std::size_t row, std::size_t col) const {
  RDSE_REQUIRE(row < rows_.size() && col < columns_.size(),
               "Table::at out of range");
  return rows_[row][col];
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      os << "  " << v << std::string(width[c] - v.size(), ' ');
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t rule = 0;
  for (std::size_t w : width) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_markdown() const {
  std::ostringstream os;
  os << '|';
  for (const auto& c : columns_) os << ' ' << c << " |";
  os << "\n|";
  for (std::size_t c = 0; c < columns_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& r : rows_) {
    os << '|';
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << ' ' << (c < r.size() ? r[c] : std::string{}) << " |";
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << escape(columns_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      os << (c ? "," : "") << (c < r.size() ? escape(r[c]) : std::string{});
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n== " << title << " ==\n" << to_text();
}

}  // namespace rdse
