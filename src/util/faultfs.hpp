#pragma once
/// \file faultfs.hpp
/// \brief Fault-injection shim over the POSIX file operations the
/// persistence layer depends on (write, fsync, rename).
///
/// Production code calls faultfs::write/fsync/rename_file instead of the
/// raw syscalls; with no fault plan armed they are thin pass-throughs. A
/// test (or the RDSE_FAULTFS environment variable, read once at daemon
/// startup) arms a FaultPlan that makes the nth call fail the way real
/// storage fails: an ENOSPC write, a short write that leaves a torn file,
/// an EIO fsync, a rename that never happens, or a "torn rename" that
/// commits a truncated file — the on-disk state a crash between write-back
/// and metadata commit leaves behind. The persistence tests drive every
/// mode and require the service to degrade to "cache miss, correct answer"
/// rather than crash or serve a wrong payload.
///
/// The plan and its counters are process-global and mutex-protected: the
/// snapshot writer may run from any worker thread.

#include <cstddef>
#include <cstdint>
#include <string>

#include <sys/types.h>

namespace rdse::faultfs {

/// Which call should fail, per operation, 1-based ("the nth write call
/// after the plan was armed"). 0 disables that fault.
struct FaultPlan {
  int fail_write_nth = 0;   ///< nth write returns -1/ENOSPC, no bytes written
  int short_write_nth = 0;  ///< nth write persists half the bytes, then fails
  int fail_fsync_nth = 0;   ///< nth fsync returns -1/EIO
  int fail_rename_nth = 0;  ///< nth rename fails, destination untouched
  int torn_rename_nth = 0;  ///< nth rename commits a half-truncated source

  [[nodiscard]] bool armed() const {
    return fail_write_nth > 0 || short_write_nth > 0 || fail_fsync_nth > 0 ||
           fail_rename_nth > 0 || torn_rename_nth > 0;
  }
};

/// Calls seen / faults fired since the plan was last armed.
struct Counters {
  std::uint64_t writes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t renames = 0;
  std::uint64_t faults_fired = 0;
};

/// Arm `plan` and reset the counters. An all-zero plan disarms.
void set_plan(const FaultPlan& plan);

/// Disarm all faults and reset the counters.
void clear();

[[nodiscard]] Counters counters();

/// Parse a plan from spec text: comma-separated `mode:N` items, e.g.
/// "fail_write:2,torn_rename:1". Unknown modes or malformed counts throw
/// Error. An empty spec is an empty (disarmed) plan.
[[nodiscard]] FaultPlan parse_plan(const std::string& spec);

/// Read RDSE_FAULTFS (if set) and arm the parsed plan; returns true when a
/// plan was armed. Called once by `rdse serve` at startup so CI can inject
/// faults into a real daemon without recompiling.
bool arm_from_env();

/// The shimmed operations. Identical contracts to the POSIX calls they
/// wrap, except that an armed plan may make them fail as documented above.
[[nodiscard]] ssize_t write(int fd, const void* buf, std::size_t count);
[[nodiscard]] int fsync(int fd);
[[nodiscard]] int rename_file(const char* from, const char* to);

}  // namespace rdse::faultfs
