#include "util/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rdse {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (n_ == 0) {
    value_ = x;
  } else {
    value_ += alpha_ * (x - value_);
  }
  ++n_;
}

void Ewma::reset() {
  value_ = 0.0;
  n_ = 0;
}

void Ewma::seed(double x) {
  value_ = x;
  n_ = 1;
}

EwmaStats::EwmaStats(double alpha) : mean_(alpha), sq_(alpha), cross_(alpha) {
  RDSE_ASSERT(alpha > 0.0 && alpha <= 1.0);
}

void EwmaStats::add(double x) {
  mean_.add(x);
  sq_.add(x * x);
  if (n_ > 0) {
    cross_.add(x * prev_);
  }
  prev_ = x;
  ++n_;
}

void EwmaStats::reset() {
  mean_.reset();
  sq_.reset();
  cross_.reset();
  prev_ = 0.0;
  n_ = 0;
}

double EwmaStats::variance() const {
  const double m = mean_.value();
  const double v = sq_.value() - m * m;
  return v > 0.0 ? v : 0.0;
}

double EwmaStats::stddev() const { return std::sqrt(variance()); }

double EwmaStats::autocorr1() const {
  if (n_ < 3) return 0.0;
  const double var = variance();
  if (var <= 0.0) return 0.0;
  const double m = mean_.value();
  double rho = (cross_.value() - m * m) / var;
  return std::clamp(rho, -1.0, 1.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RDSE_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  RDSE_REQUIRE(bins >= 1, "Histogram: need at least one bin");
  // A denormal range can make hi > lo true while the per-bin width still
  // underflows to 0.0, which would turn add() into a division by zero.
  RDSE_REQUIRE((hi - lo) / static_cast<double>(bins) > 0.0,
               "Histogram: bin width underflows to zero");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double q = std::floor((x - lo_) / width);
  const double last = static_cast<double>(counts_.size() - 1);
  // Clamp in the double domain *before* the integer cast: a far-out sample
  // (or an infinity) yields a quotient outside the integer range, and
  // casting that is undefined behaviour. NaN compares false against
  // everything and lands in bin 0.
  const double bin = q > 0.0 ? std::min(q, last) : 0.0;
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  RDSE_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  RDSE_REQUIRE(bin <= counts_.size(), "Histogram: bin index out of range");
  if (bin == counts_.size()) return hi_;  // upper edge of the last bin
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  RDSE_REQUIRE(bin < counts_.size(), "Histogram: bin index out of range");
  return bin_lo(bin + 1);
}

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) {
  RDSE_ASSERT(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  RDSE_ASSERT(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double quantile_of(std::vector<double> xs, double q) {
  RDSE_REQUIRE(!xs.empty(), "quantile_of: empty sample");
  RDSE_REQUIRE(q >= 0.0 && q <= 1.0, "quantile_of: q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

}  // namespace rdse
