#include "util/hash.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace rdse {

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string fnv1a64_hex(std::string_view text) {
  return u64_to_hex(fnv1a64(text));
}

std::string u64_to_hex(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf, 16);
}

std::uint64_t u64_from_hex(std::string_view hex) {
  RDSE_REQUIRE(hex.size() == 16, "u64_from_hex: expected 16 hex digits");
  std::uint64_t value = 0;
  for (const char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw Error("u64_from_hex: invalid hex digit");
    }
  }
  return value;
}

}  // namespace rdse
