#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <string_view>

#include "util/assert.hpp"

namespace rdse {

Options Options::parse(int argc, const char* const* argv,
                       std::span<const std::string_view> bool_flags) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    bool is_bool = false;
    for (const std::string_view flag : bool_flags) {
      if (arg == flag) {
        is_bool = true;
        break;
      }
    }
    if (is_bool) {
      opts.values_[arg] = "1";
      continue;
    }
    // "--key value": a non-boolean option must be followed by a value
    // token. A trailing "--key" or "--key --other" is a forgotten value
    // ("rdse sweep --model --dry-run"), not an implicit flag — treating it
    // as one silently changes what runs.
    if (i + 1 >= argc || std::string_view(argv[i + 1]).rfind("--", 0) == 0) {
      throw Error("option --" + arg + " requires a value");
    }
    opts.values_[arg] = argv[++i];
  }
  return opts;
}

void Options::require_known(std::span<const std::string_view> allowed) const {
  for (const auto& [name, value] : values_) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (name == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw Error("unknown option --" + name);
    }
  }
}

std::optional<std::string> Options::get(const std::string& name,
                                        const std::string& env_name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  if (!env_name.empty()) {
    if (const char* env = std::getenv(env_name.c_str());
        env != nullptr && env[0] != '\0') {
      return std::string(env);
    }
  }
  return std::nullopt;
}

std::int64_t Options::get_int(const std::string& name, std::int64_t def,
                              const std::string& env_name) const {
  const auto v = get(name, env_name);
  if (!v) return def;
  // Whole-token parse: std::stoll would accept "10abc" as 10 and silently
  // run with a truncated value. from_chars also rejects leading whitespace
  // and a leading '+', which is fine for option values.
  std::int64_t value = 0;
  const char* last = v->data() + v->size();
  const auto res = std::from_chars(v->data(), last, value);
  if (res.ec != std::errc() || res.ptr != last || v->empty()) {
    throw Error("option --" + name + ": expected integer, got '" + *v + "'");
  }
  return value;
}

double Options::get_double(const std::string& name, double def,
                           const std::string& env_name) const {
  const auto v = get(name, env_name);
  if (!v) return def;
  double value = 0.0;
  const char* last = v->data() + v->size();
  const auto res = std::from_chars(v->data(), last, value);
  if (res.ec != std::errc() || res.ptr != last || v->empty()) {
    throw Error("option --" + name + ": expected number, got '" + *v + "'");
  }
  return value;
}

std::string Options::get_string(const std::string& name, std::string def,
                                const std::string& env_name) const {
  const auto v = get(name, env_name);
  return v ? *v : def;
}

bool Options::get_flag(const std::string& name,
                       const std::string& env_name) const {
  const auto v = get(name, env_name);
  if (!v) return false;
  return *v != "0" && *v != "false" && *v != "off" && !v->empty();
}

}  // namespace rdse
