#include "util/cli.hpp"

#include <cstdlib>

#include "util/assert.hpp"

namespace rdse {

Options Options::parse(int argc, const char* const* argv,
                       std::span<const std::string_view> bool_flags) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      opts.positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      opts.values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    bool is_bool = false;
    for (const std::string_view flag : bool_flags) {
      if (arg == flag) {
        is_bool = true;
        break;
      }
    }
    // "--key value" when the next token is not itself an option (and the
    // key is not a declared boolean flag), else a flag.
    if (!is_bool && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      opts.values_[arg] = argv[++i];
    } else {
      opts.values_[arg] = "1";
    }
  }
  return opts;
}

void Options::require_known(std::span<const std::string_view> allowed) const {
  for (const auto& [name, value] : values_) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (name == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw Error("unknown option --" + name);
    }
  }
}

std::optional<std::string> Options::get(const std::string& name,
                                        const std::string& env_name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  if (!env_name.empty()) {
    if (const char* env = std::getenv(env_name.c_str());
        env != nullptr && env[0] != '\0') {
      return std::string(env);
    }
  }
  return std::nullopt;
}

std::int64_t Options::get_int(const std::string& name, std::int64_t def,
                              const std::string& env_name) const {
  const auto v = get(name, env_name);
  if (!v) return def;
  try {
    return std::stoll(*v);
  } catch (const std::exception&) {
    throw Error("option --" + name + ": expected integer, got '" + *v + "'");
  }
}

double Options::get_double(const std::string& name, double def,
                           const std::string& env_name) const {
  const auto v = get(name, env_name);
  if (!v) return def;
  try {
    return std::stod(*v);
  } catch (const std::exception&) {
    throw Error("option --" + name + ": expected number, got '" + *v + "'");
  }
}

std::string Options::get_string(const std::string& name, std::string def,
                                const std::string& env_name) const {
  const auto v = get(name, env_name);
  return v ? *v : def;
}

bool Options::get_flag(const std::string& name,
                       const std::string& env_name) const {
  const auto v = get(name, env_name);
  if (!v) return false;
  return *v != "0" && *v != "false" && *v != "off" && !v->empty();
}

}  // namespace rdse
