#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace rdse {

namespace {

[[noreturn]] void kind_error(const char* expected, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null", "bool", "number",
                                           "string", "array", "object"};
  throw Error(std::string("json: expected ") + expected + ", value is " +
              kNames[static_cast<std::size_t>(got)]);
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  // Shortest representation that round-trips the exact double.
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, res.ptr);
}

}  // namespace

JsonValue JsonValue::array() {
  JsonValue v;
  v.data_ = std::vector<JsonValue>{};
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.data_ = std::vector<Member>{};
  return v;
}

JsonValue::Kind JsonValue::kind() const {
  return static_cast<Kind>(data_.index());
}

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&data_)) return *b;
  kind_error("bool", kind());
}

double JsonValue::as_number() const {
  if (const double* d = std::get_if<double>(&data_)) return *d;
  kind_error("number", kind());
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  // Reject values the cast cannot represent (the cast itself would be UB).
  if (!(d >= -9.2e18 && d <= 9.2e18)) {
    throw Error("json: number out of integer range");
  }
  return static_cast<std::int64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&data_)) return *s;
  kind_error("string", kind());
}

void JsonValue::push_back(JsonValue value) {
  if (auto* a = std::get_if<std::vector<JsonValue>>(&data_)) {
    a->push_back(std::move(value));
    return;
  }
  kind_error("array", kind());
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (const auto* a = std::get_if<std::vector<JsonValue>>(&data_)) return *a;
  kind_error("array", kind());
}

std::vector<JsonValue>& JsonValue::items() {
  if (auto* a = std::get_if<std::vector<JsonValue>>(&data_)) return *a;
  kind_error("array", kind());
}

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  if (auto* o = std::get_if<std::vector<Member>>(&data_)) {
    for (Member& m : *o) {
      if (m.first == key) {
        m.second = std::move(value);
        return *this;
      }
    }
    o->emplace_back(std::move(key), std::move(value));
    return *this;
  }
  kind_error("object", kind());
}

bool JsonValue::erase(std::string_view key) {
  if (auto* o = std::get_if<std::vector<Member>>(&data_)) {
    for (auto it = o->begin(); it != o->end(); ++it) {
      if (it->first == key) {
        o->erase(it);
        return true;
      }
    }
    return false;
  }
  kind_error("object", kind());
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (const auto* o = std::get_if<std::vector<Member>>(&data_)) {
    for (const Member& m : *o) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }
  kind_error("object", kind());
}

JsonValue* JsonValue::find(std::string_view key) {
  if (auto* o = std::get_if<std::vector<Member>>(&data_)) {
    for (Member& m : *o) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }
  kind_error("object", kind());
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) return *v;
  throw Error("json: missing key '" + std::string(key) + "'");
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (const auto* o = std::get_if<std::vector<Member>>(&data_)) return *o;
  kind_error("object", kind());
}

std::size_t JsonValue::size() const {
  if (const auto* a = std::get_if<std::vector<JsonValue>>(&data_)) {
    return a->size();
  }
  if (const auto* o = std::get_if<std::vector<Member>>(&data_)) {
    return o->size();
  }
  kind_error("array or object", kind());
}

// ---------------------------------------------------------------------- dump

namespace {

void dump_value(const JsonValue& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_value(const JsonValue& v, std::string& out, int indent, int depth) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: append_number(out, v.as_number()); break;
    case JsonValue::Kind::kString: append_escaped(out, v.as_string()); break;
    case JsonValue::Kind::kArray: {
      const auto& items = v.items();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        dump_value(items[i], out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      const auto& members = v.members();
      if (members.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i) out += indent > 0 ? "," : ", ";
        newline_indent(out, indent, depth + 1);
        append_escaped(out, members[i].first);
        out += ": ";
        dump_value(members[i].second, out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

// --------------------------------------------------------------------- parse

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  /// Containers recurse through parse_value; a hostile document of nested
  /// brackets must become an Error, not a stack overflow.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser* parser) : parser_(parser) {
      if (++parser_->depth_ > kMaxDepth) parser_->fail("nesting too deep");
    }
    ~DepthGuard() { --parser_->depth_; }
    Parser* parser_;
  };

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("unknown token");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("unknown token");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("unknown token");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    const DepthGuard guard(this);
    expect('{');
    JsonValue obj = JsonValue::object();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      obj.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    const DepthGuard guard(this);
    expect('[');
    JsonValue arr = JsonValue::array();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  /// Read the 4 hex digits of a \u escape at pos_ and advance past them.
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    const auto res = std::from_chars(text_.data() + pos_,
                                     text_.data() + pos_ + 4, code, 16);
    if (res.ptr != text_.data() + pos_ + 4) fail("bad \\u escape");
    pos_ += 4;
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          // UTF-16 surrogate halves: a high surrogate must be followed by
          // "\uDC00".."\uDFFF" and the pair decodes to one astral-plane
          // code point; encoding a half as-is would emit invalid UTF-8.
          if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid low surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape sequence");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double d = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, d);
    if (res.ec != std::errc() || res.ptr != text_.data() + pos_ ||
        start == pos_) {
      pos_ = start;
      fail("malformed number");
    }
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace rdse
