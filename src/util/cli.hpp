#pragma once
/// \file cli.hpp
/// \brief Minimal command-line / environment option parsing for the example
/// and bench binaries (`--key=value`, `--flag`; environment fallback so the
/// bench harness can be scaled via RDSE_* variables without editing code).

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rdse {

class Options {
 public:
  /// Parse argv; unrecognized positional arguments are kept in order.
  /// Accepts "--key=value", "--key value" and boolean "--flag". Options
  /// named in `bool_flags` never consume the following token, so
  /// "--quiet path" keeps "path" positional instead of treating it as the
  /// flag's value. A non-boolean "--key" with no following value token
  /// (end of argv, or another "--option" next) throws Error — a forgotten
  /// value must fail loudly instead of misparsing as a flag.
  static Options parse(int argc, const char* const* argv,
                       std::span<const std::string_view> bool_flags);
  static Options parse(int argc, const char* const* argv) {
    return parse(argc, argv, {});
  }

  /// Look up --name, else environment variable env_name (if non-empty),
  /// else nothing.
  [[nodiscard]] std::optional<std::string> get(
      const std::string& name, const std::string& env_name = "") const;

  /// Numeric getters parse the whole token ("10abc" and "1.5x" are errors,
  /// not 10 and 1.5) and throw Error on any malformed value.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t def,
                                     const std::string& env_name = "") const;
  [[nodiscard]] double get_double(const std::string& name, double def,
                                  const std::string& env_name = "") const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string def,
                                       const std::string& env_name = "") const;
  [[nodiscard]] bool get_flag(const std::string& name,
                              const std::string& env_name = "") const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Strict front-ends (the `rdse` binary): throw Error naming the first
  /// parsed option that is not in `allowed`. The permissive bench/example
  /// binaries simply never call this.
  void require_known(std::span<const std::string_view> allowed) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace rdse
