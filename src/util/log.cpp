#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace rdse {
namespace {
// Atomic: the serve front-end handles requests on concurrent worker and
// connection threads, and the level gate must stay race-free under TSan.
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) {
    return;
  }
  std::fprintf(stderr, "[rdse %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace rdse
