#include "util/log.hpp"

#include <cstdio>

namespace rdse {
namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn ";
    case LogLevel::kInfo: return "info ";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) {
    return;
  }
  std::fprintf(stderr, "[rdse %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace rdse
