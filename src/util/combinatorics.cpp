#include "util/combinatorics.hpp"

#include <algorithm>

namespace rdse {

std::string u128_to_string(U128 v) {
  if (v == 0) return "0";
  std::string out;
  while (v > 0) {
    out.push_back(static_cast<char>('0' + static_cast<int>(v % 10)));
    v /= 10;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string u128_to_string_grouped(U128 v) {
  const std::string plain = u128_to_string(v);
  std::string out;
  out.reserve(plain.size() + plain.size() / 3);
  const std::size_t n = plain.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(plain[i]);
  }
  return out;
}

U128 checked_mul(U128 a, U128 b) {
  if (a != 0 && b > static_cast<U128>(-1) / a) {
    throw Error("combinatorics: 128-bit multiplication overflow");
  }
  return a * b;
}

U128 checked_add(U128 a, U128 b) {
  if (a > static_cast<U128>(-1) - b) {
    throw Error("combinatorics: 128-bit addition overflow");
  }
  return a + b;
}

U128 binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  k = std::min<std::uint64_t>(k, n - k);
  U128 result = 1;
  // Multiply/divide alternately; result stays integral because every prefix
  // C(n-k+i, i) is itself a binomial coefficient.
  for (std::uint64_t i = 1; i <= k; ++i) {
    result = checked_mul(result, n - k + i);
    result /= i;
  }
  return result;
}

U128 factorial(std::uint64_t n) {
  U128 result = 1;
  for (std::uint64_t i = 2; i <= n; ++i) {
    result = checked_mul(result, i);
  }
  return result;
}

U128 interleavings(std::uint64_t a, std::uint64_t b) {
  return binomial(a + b, a);
}

U128 context_change_combinations(std::uint64_t n, std::uint64_t changes) {
  return binomial(n, changes);
}

}  // namespace rdse
