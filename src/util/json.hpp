#pragma once
/// \file json.hpp
/// \brief Minimal JSON document model for machine-readable sweep artifacts.
///
/// One value type covers both directions: sweep reports *build* a JsonValue
/// tree and dump() it for the CI artifact stage, and the `rdse report`
/// subcommand (plus the test suites) parse() an artifact back to validate
/// and re-render it. Only what the artifacts need is implemented — objects,
/// arrays, strings, doubles, bools, null — with shortest-round-trip number
/// formatting so numeric fields survive a dump/parse cycle bit-exactly.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace rdse {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  /// Object members keep insertion order (artifacts stay diffable).
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() : data_(nullptr) {}
  JsonValue(bool b) : data_(b) {}  // NOLINT(google-explicit-constructor)
  JsonValue(double d) : data_(d) {}  // NOLINT(google-explicit-constructor)
  JsonValue(int i)  // NOLINT(google-explicit-constructor)
      : data_(static_cast<double>(i)) {}
  JsonValue(std::int64_t i)  // NOLINT(google-explicit-constructor)
      : data_(static_cast<double>(i)) {}
  JsonValue(std::string s)  // NOLINT(google-explicit-constructor)
      : data_(std::move(s)) {}
  JsonValue(const char* s)  // NOLINT(google-explicit-constructor)
      : data_(std::string(s)) {}

  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  [[nodiscard]] Kind kind() const;
  [[nodiscard]] bool is_null() const { return kind() == Kind::kNull; }

  /// Typed accessors; throw Error when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access. push_back() throws unless this is an array. The mutable
  /// items() overload supports in-place rewriting of nested documents
  /// (e.g. stripping volatile fields before caching a payload).
  void push_back(JsonValue value);
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] std::vector<JsonValue>& items();

  /// Object access. set() replaces an existing key in place; find() returns
  /// nullptr when absent; at() throws Error when absent; erase() removes a
  /// key and reports whether it was present.
  JsonValue& set(std::string key, JsonValue value);
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] JsonValue* find(std::string_view key);
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] const std::vector<Member>& members() const;
  bool erase(std::string_view key);

  /// Element count of an array or object; throws Error otherwise.
  [[nodiscard]] std::size_t size() const;

  /// Serialize. `indent` == 0 renders compactly on one line; > 0 pretty-
  /// prints with that many spaces per nesting level. Non-finite numbers
  /// (which JSON cannot represent) are emitted as null.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; trailing non-whitespace, unterminated
  /// constructs and unknown tokens throw Error with a byte offset.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string,
               std::vector<JsonValue>, std::vector<Member>>
      data_;
};

}  // namespace rdse
