#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/assert.hpp"
#include "util/table.hpp"

namespace rdse {

std::string render_plot(const std::vector<Series>& series,
                        const PlotOptions& options) {
  RDSE_REQUIRE(options.width >= 16 && options.height >= 4,
               "render_plot: plot area too small");
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : series) {
    RDSE_REQUIRE(s.x.size() == s.y.size(), "render_plot: x/y size mismatch");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) {
    return "(empty plot)\n";
  }
  if (options.y_from_zero) {
    ymin = std::min(ymin, 0.0);
  }
  if (xmax <= xmin) xmax = xmin + 1.0;
  if (ymax <= ymin) ymax = ymin + 1.0;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double fx = (s.x[i] - xmin) / (xmax - xmin);
      const double fy = (s.y[i] - ymin) / (ymax - ymin);
      int cx = static_cast<int>(std::lround(fx * (w - 1)));
      int cy = static_cast<int>(std::lround(fy * (h - 1)));
      cx = std::clamp(cx, 0, w - 1);
      cy = std::clamp(cy, 0, h - 1);
      // Row 0 is the top of the plot.
      grid[static_cast<std::size_t>(h - 1 - cy)]
          [static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!options.y_label.empty()) {
    os << options.y_label << '\n';
  }
  const std::string top = format_double(ymax, 2);
  const std::string bot = format_double(ymin, 2);
  const std::size_t margin = std::max(top.size(), bot.size());
  for (int r = 0; r < h; ++r) {
    std::string label(margin, ' ');
    if (r == 0) label = std::string(margin - top.size(), ' ') + top;
    if (r == h - 1) label = std::string(margin - bot.size(), ' ') + bot;
    os << label << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  os << std::string(margin, ' ') << " +"
     << std::string(static_cast<std::size_t>(w), '-') << '\n';
  const std::string xl = format_double(xmin, 1);
  const std::string xr = format_double(xmax, 1);
  std::string xaxis(margin + 2, ' ');
  xaxis += xl;
  const std::size_t room =
      static_cast<std::size_t>(w) > xl.size() + xr.size()
          ? static_cast<std::size_t>(w) - xl.size() - xr.size()
          : 1;
  xaxis += std::string(room, ' ');
  xaxis += xr;
  os << xaxis;
  if (!options.x_label.empty()) {
    os << "  (" << options.x_label << ")";
  }
  os << '\n';
  for (const auto& s : series) {
    os << "  " << s.glyph << " = " << s.name << '\n';
  }
  return os.str();
}

std::string sparkline(const std::vector<double>& values, int width) {
  if (values.empty() || width <= 0) return "";
  static const char levels[] = {' ', '.', ':', '-', '=', '#'};
  constexpr int kLevels = 6;
  const double lo = *std::min_element(values.begin(), values.end());
  const double hi = *std::max_element(values.begin(), values.end());
  const std::size_t n = values.size();
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    // Average the bucket of samples that maps to this column.
    const std::size_t b0 =
        static_cast<std::size_t>(i) * n / static_cast<std::size_t>(width);
    std::size_t b1 =
        static_cast<std::size_t>(i + 1) * n / static_cast<std::size_t>(width);
    b1 = std::max(b1, b0 + 1);
    double sum = 0.0;
    for (std::size_t j = b0; j < b1 && j < n; ++j) sum += values[j];
    const double avg = sum / static_cast<double>(b1 - b0);
    int level = 0;
    if (hi > lo) {
      level = static_cast<int>((avg - lo) / (hi - lo) * (kLevels - 1) + 0.5);
      level = std::clamp(level, 0, kLevels - 1);
    }
    out.push_back(levels[level]);
  }
  return out;
}

}  // namespace rdse
