#include "util/faultfs.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>

#include "util/assert.hpp"

namespace rdse::faultfs {

namespace {

struct State {
  FaultPlan plan;
  Counters counts;
  std::mutex mutex;
};

State& state() {
  static State s;
  return s;
}

/// True when this call (1-based index `seen`) is the armed nth call.
bool fires(int nth, std::uint64_t seen) {
  return nth > 0 && seen == static_cast<std::uint64_t>(nth);
}

}  // namespace

void set_plan(const FaultPlan& plan) {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  s.plan = plan;
  s.counts = Counters{};
}

void clear() { set_plan(FaultPlan{}); }

Counters counters() {
  State& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.counts;
}

FaultPlan parse_plan(const std::string& spec) {
  FaultPlan plan;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    const std::size_t colon = item.find(':');
    RDSE_REQUIRE(colon != std::string::npos,
                 "faultfs: expected mode:N, got '" + item + "'");
    const std::string mode = item.substr(0, colon);
    const std::string count = item.substr(colon + 1);
    char* end = nullptr;
    const long n = std::strtol(count.c_str(), &end, 10);
    RDSE_REQUIRE(end != nullptr && *end == '\0' && n >= 1 && n <= 1'000'000,
                 "faultfs: bad fault index '" + count + "' in '" + item + "'");
    if (mode == "fail_write") {
      plan.fail_write_nth = static_cast<int>(n);
    } else if (mode == "short_write") {
      plan.short_write_nth = static_cast<int>(n);
    } else if (mode == "fail_fsync") {
      plan.fail_fsync_nth = static_cast<int>(n);
    } else if (mode == "fail_rename") {
      plan.fail_rename_nth = static_cast<int>(n);
    } else if (mode == "torn_rename") {
      plan.torn_rename_nth = static_cast<int>(n);
    } else {
      throw Error("faultfs: unknown fault mode '" + mode +
                  "' (known: fail_write, short_write, fail_fsync, "
                  "fail_rename, torn_rename)");
    }
  }
  return plan;
}

bool arm_from_env() {
  const char* spec = std::getenv("RDSE_FAULTFS");
  if (spec == nullptr || *spec == '\0') return false;
  const FaultPlan plan = parse_plan(spec);
  if (!plan.armed()) return false;
  set_plan(plan);
  return true;
}

ssize_t write(int fd, const void* buf, std::size_t count) {
  State& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    ++s.counts.writes;
    if (fires(s.plan.fail_write_nth, s.counts.writes)) {
      ++s.counts.faults_fired;
      errno = ENOSPC;
      return -1;
    }
    if (fires(s.plan.short_write_nth, s.counts.writes)) {
      ++s.counts.faults_fired;
      // Persist a prefix, then fail: the caller sees an error, but the torn
      // bytes already reached the file — exactly what a mid-write crash or
      // a filled disk leaves behind.
      (void)::write(fd, buf, count / 2);
      errno = ENOSPC;
      return -1;
    }
  }
  return ::write(fd, buf, count);
}

int fsync(int fd) {
  State& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    ++s.counts.fsyncs;
    if (fires(s.plan.fail_fsync_nth, s.counts.fsyncs)) {
      ++s.counts.faults_fired;
      errno = EIO;
      return -1;
    }
  }
  return ::fsync(fd);
}

int rename_file(const char* from, const char* to) {
  State& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mutex);
    ++s.counts.renames;
    if (fires(s.plan.fail_rename_nth, s.counts.renames)) {
      ++s.counts.faults_fired;
      errno = EIO;
      return -1;
    }
    if (fires(s.plan.torn_rename_nth, s.counts.renames)) {
      ++s.counts.faults_fired;
      // Simulated crash between write-back and commit: the rename lands,
      // but only a prefix of the data survived. Truncate the source to
      // half, rename it for real, and report failure to the caller (a
      // crashed process would never see a return code at all).
      FILE* f = std::fopen(from, "rb");
      long size = 0;
      if (f != nullptr) {
        std::fseek(f, 0, SEEK_END);
        size = std::ftell(f);
        std::fclose(f);
      }
      (void)::truncate(from, size / 2);
      (void)::rename(from, to);
      errno = EIO;
      return -1;
    }
  }
  return ::rename(from, to);
}

}  // namespace rdse::faultfs
