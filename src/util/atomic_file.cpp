#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include "util/faultfs.hpp"

namespace rdse {

bool write_all_fd(int fd, std::string_view data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n =
        faultfs::write(fd, data.data() + done, data.size() - done);
    if (n <= 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string(".") : path.substr(0, slash + 1);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  (void)::fsync(fd);
  (void)::close(fd);
}

bool write_file_atomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool written = write_all_fd(fd, data) && faultfs::fsync(fd) == 0;
  (void)::close(fd);
  if (!written || faultfs::rename_file(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

}  // namespace rdse
