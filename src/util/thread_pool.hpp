#pragma once
/// \file thread_pool.hpp
/// \brief Minimal fixed-size worker pool for embarrassingly parallel design-
/// space sweeps (replica annealing, repeated-run aggregation, device sweeps).
///
/// The pool is deliberately tiny: a locked deque of std::function jobs and a
/// blocking fan-out helper. Exploration workloads are coarse-grained (one job
/// runs thousands of schedule evaluations), so queue contention is
/// irrelevant; what matters is that parallel_for_index() is a barrier — it
/// returns only when every index has been processed — because the replica-
/// exchange explorer exchanges solutions at deterministic iteration
/// boundaries, never mid-flight.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rdse {

class ThreadPool {
 public:
  /// `threads` == 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue one job. Jobs must not themselves block on the pool.
  void submit(std::function<void()> job);

  /// Run fn(0), fn(1), ..., fn(count - 1) on the pool and block until every
  /// call returned (barrier). If any call throws, the first exception (in
  /// completion order) is rethrown here after the barrier.
  void parallel_for_index(std::size_t count,
                          const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool stopping_ = false;
};

}  // namespace rdse
