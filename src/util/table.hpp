#pragma once
/// \file table.hpp
/// \brief Column-oriented result tables with aligned-text, Markdown and CSV
/// rendering. Every bench binary prints its paper table/figure through this.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rdse {

/// A simple rectangular table: named columns, string cells, numeric helpers.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// Start a new row; subsequent cell() calls fill it left to right.
  Table& row();

  /// Append a preformatted cell to the current row.
  Table& cell(std::string value);
  /// Append an integral cell.
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value) { return cell(static_cast<std::int64_t>(value)); }
  /// Append a floating-point cell with `decimals` fraction digits.
  Table& cell(double value, int decimals = 2);

  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::string& at(std::size_t row, std::size_t col) const;

  /// Render with aligned columns and a header rule.
  [[nodiscard]] std::string to_text() const;
  /// Render as GitHub-flavored Markdown.
  [[nodiscard]] std::string to_markdown() const;
  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string to_csv() const;

  /// Write to_text() to a stream with a title line.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (helper shared with reports).
[[nodiscard]] std::string format_double(double value, int decimals);

}  // namespace rdse
