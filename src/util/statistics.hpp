#pragma once
/// \file statistics.hpp
/// \brief Online statistics used by the adaptive annealing schedules and by
/// the experiment harnesses.
///
/// The Lam-style schedules (§4.1 of the paper) steer the temperature from
/// statistical estimates of the cost process: mean, variance and acceptance
/// ratio, maintained either over the whole history (RunningStats) or with
/// exponential forgetting (Ewma / EwmaStats) so the controller tracks the
/// current quasi-equilibrium rather than the whole trajectory.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rdse {

/// Numerically stable streaming mean/variance (Welford), plus min/max.
class RunningStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Raw accumulator snapshot for checkpoint serialization.
  struct Raw {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Raw raw() const { return Raw{n_, mean_, m2_, min_, max_}; }
  void restore(const Raw& r) {
    n_ = r.n;
    mean_ = r.mean;
    m2_ = r.m2;
    min_ = r.min;
    max_ = r.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exponentially weighted moving average with smoothing weight `alpha`
/// (the weight of the newest sample).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  void reset();
  /// Seed the average with an initial value (counts as one sample).
  void seed(double x);

  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] std::size_t count() const { return n_; }

  /// Checkpoint restore: overwrite the accumulator (alpha stays as
  /// constructed — it is configuration, not state).
  void restore(double value, std::size_t n) {
    value_ = value;
    n_ = n;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  std::size_t n_ = 0;
};

/// Exponentially weighted mean and variance of a cost process, plus the
/// lag-1 autocorrelation estimate used by the Lam–Delosme schedule to judge
/// how strongly consecutive costs are coupled under the current move set.
class EwmaStats {
 public:
  explicit EwmaStats(double alpha);

  void add(double x);
  void reset();

  [[nodiscard]] double mean() const { return mean_.value(); }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Lag-1 autocorrelation in [-1, 1]; 0 until enough samples are seen.
  [[nodiscard]] double autocorr1() const;
  [[nodiscard]] std::size_t count() const { return n_; }

  /// Raw accumulator snapshot for checkpoint serialization.
  struct Raw {
    double mean = 0.0;
    std::size_t mean_n = 0;
    double sq = 0.0;
    std::size_t sq_n = 0;
    double cross = 0.0;
    std::size_t cross_n = 0;
    double prev = 0.0;
    std::size_t n = 0;
  };
  [[nodiscard]] Raw raw() const {
    return Raw{mean_.value(),  mean_.count(),  sq_.value(), sq_.count(),
               cross_.value(), cross_.count(), prev_,       n_};
  }
  void restore(const Raw& r) {
    mean_.restore(r.mean, r.mean_n);
    sq_.restore(r.sq, r.sq_n);
    cross_.restore(r.cross, r.cross_n);
    prev_ = r.prev;
    n_ = r.n;
  }

 private:
  Ewma mean_;
  Ewma sq_;     // EWMA of x^2
  Ewma cross_;  // EWMA of x_t * x_{t-1}
  double prev_ = 0.0;
  std::size_t n_ = 0;
};

/// Equal-width histogram over [lo, hi); out-of-range samples are clamped to
/// the first/last bin. Used by report tooling.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Batch helpers for experiment aggregation.
[[nodiscard]] double mean_of(std::span<const double> xs);
[[nodiscard]] double stddev_of(std::span<const double> xs);
[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);
/// q in [0,1]; linear interpolation between order statistics.
[[nodiscard]] double quantile_of(std::vector<double> xs, double q);

}  // namespace rdse
