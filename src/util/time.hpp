#pragma once
/// \file time.hpp
/// \brief Integral time arithmetic for deterministic evaluation.
///
/// All performance estimates, schedules and longest-path computations use
/// whole nanoseconds. Integral arithmetic makes every experiment bit-exact
/// across platforms and optimization levels; `double` appears only in the
/// annealer's acceptance test and in report formatting.

#include <cstdint>
#include <string>

namespace rdse {

/// Time duration / instant in nanoseconds. 2^63 ns ≈ 292 years: no overflow
/// risk for schedule arithmetic at embedded-application scale.
using TimeNs = std::int64_t;

constexpr TimeNs kNsPerUs = 1'000;
constexpr TimeNs kNsPerMs = 1'000'000;
constexpr TimeNs kNsPerSec = 1'000'000'000;

/// Construct a TimeNs from a value expressed in milliseconds.
constexpr TimeNs from_ms(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs) +
                             (ms >= 0 ? 0.5 : -0.5));
}

/// Construct a TimeNs from a value expressed in microseconds.
constexpr TimeNs from_us(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kNsPerUs) +
                             (us >= 0 ? 0.5 : -0.5));
}

/// Convert to milliseconds (for reporting only).
constexpr double to_ms(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}

/// Convert to microseconds (for reporting only).
constexpr double to_us(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerUs);
}

/// Render a duration as a human-readable string, e.g. "18.10 ms".
inline std::string format_ms(TimeNs t) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.2f ms", to_ms(t));
  return buf;
}

}  // namespace rdse
