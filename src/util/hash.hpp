#pragma once
/// \file hash.hpp
/// \brief FNV-1a fingerprints and 64-bit hex codecs shared by every
/// persistence format (`rdse.cachedb.v1`, `rdse.checkpoint.v1`,
/// `rdse.journal.v1`).
///
/// JSON numbers are doubles, so a full 64-bit word cannot round-trip
/// through `util/json` as a number; every artifact stores u64 values
/// (checksums, RNG words, seeds) as 16-digit lowercase hex strings
/// instead.

#include <cstdint>
#include <string>
#include <string_view>

namespace rdse {

/// FNV-1a 64-bit hash.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view text);

/// `fnv1a64` rendered as 16 lowercase hex digits.
[[nodiscard]] std::string fnv1a64_hex(std::string_view text);

/// `value` rendered as 16 lowercase hex digits.
[[nodiscard]] std::string u64_to_hex(std::uint64_t value);

/// Parses a 16-digit lowercase hex string produced by u64_to_hex.
/// Throws Error on any other input — artifacts never contain malformed
/// words unless they are corrupt, which must be loud.
[[nodiscard]] std::uint64_t u64_from_hex(std::string_view hex);

}  // namespace rdse
