#include "util/rng.hpp"

#include <cmath>

namespace rdse {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t split_stream_seed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed + 0x9E3779B97F4A7C15ULL * stream;
  return splitmix64(state);
}

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
  // xoshiro state must not be all zero; splitmix64 cannot produce four zero
  // words from any seed, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  RDSE_ASSERT(bound >= 1);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  RDSE_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform_u64(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::index(std::size_t n) {
  RDSE_ASSERT(n >= 1);
  return static_cast<std::size_t>(uniform_u64(n));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  RDSE_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RDSE_ASSERT(w >= 0.0);
    total += w;
  }
  RDSE_ASSERT(total > 0.0);
  double x = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) {
      return i;
    }
  }
  // Floating-point slack: the loop can fall through when x lands exactly on
  // the summed total; return the last positive-weight entry.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xA3EC647659359ACDULL);
}

}  // namespace rdse
