#pragma once
/// \file log.hpp
/// \brief Leveled diagnostic logging to stderr.
///
/// The library itself is silent at default level; examples and benches raise
/// the level for progress reporting. Not thread-safe by design — all rdse
/// experiments are single-threaded for reproducibility.

#include <sstream>
#include <string>

namespace rdse {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global threshold; messages above it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one message at the given level (newline appended).
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_error(Args&&... args) {
  log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_debug(Args&&... args) {
  log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace rdse
