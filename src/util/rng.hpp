#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// rdse implements its own generator (xoshiro256**) and its own bounded /
/// real / normal draws instead of <random> distributions, because the
/// standard distributions are implementation-defined: identical seeds would
/// give different experiment results on different standard libraries. Every
/// stochastic component in the library takes an explicit Rng, so runs are
/// reproducible from a single 64-bit seed.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"

namespace rdse {

/// Derive the seed of independent stream `stream` from one master seed
/// (SplitMix64 over golden-ratio-spaced stream indices): the canonical way
/// to give each parallel replica / run its own decorrelated Rng.
[[nodiscard]] std::uint64_t split_stream_seed(std::uint64_t seed,
                                              std::uint64_t stream);

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through SplitMix64 as its authors recommend.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Re-seed the full 256-bit state from one 64-bit value.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) for bound >= 1 (Lemire's method,
  /// bias-free).
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform01();

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// True with probability p (p outside [0,1] is clamped).
  bool bernoulli(double p);

  /// Standard normal draw (Box-Muller; one value cached).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Random index into a non-empty container of size n.
  std::size_t index(std::size_t n);

  /// Pick a random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    RDSE_ASSERT(!items.empty());
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draw an index according to non-negative weights (sum must be > 0).
  std::size_t weighted_index(std::span<const double> weights);

  /// Derive an independent child generator (for per-run seeding).
  Rng split();

  /// Complete serializable generator state: the 256-bit xoshiro words plus
  /// the Box-Muller cache. Restoring it resumes the stream bit-identically
  /// mid-sequence — the foundation of checkpoint/resume determinism.
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  [[nodiscard]] State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, cached_normal_,
                 has_cached_normal_};
  }

  void set_state(const State& st) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = st.words[i];
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

 private:
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rdse
