#pragma once
/// \file atomic_file.hpp
/// \brief The temp+fsync+atomic-rename write discipline, shared by every
/// durable artifact (`rdse.cachedb.v1`, `rdse.checkpoint.v1`, journal
/// compaction).
///
/// All data-path syscalls are routed through util/faultfs so the
/// fault-injection tests can prove each failure mode leaves either the
/// previous file or the new file in place — never a half-written mix.

#include <string>
#include <string_view>

namespace rdse {

/// Write the whole buffer through the fault-injection shim, retrying real
/// partial writes; false on any (injected or real) failure.
[[nodiscard]] bool write_all_fd(int fd, std::string_view data);

/// Best-effort fsync of the directory holding `path`, so a just-committed
/// rename survives a crash. Not routed through faultfs: the fault harness
/// targets the data path, and a lost directory entry is indistinguishable
/// from a missing file, which every loader already handles.
void sync_parent_dir(const std::string& path);

/// Atomically replace `path` with `data`: write `path.tmp`, fsync, rename
/// over `path`, fsync the parent directory. Returns false — leaving the
/// previous file untouched where the OS permits — when any step fails;
/// never throws on I/O errors.
[[nodiscard]] bool write_file_atomic(const std::string& path,
                                     std::string_view data);

}  // namespace rdse
