#pragma once
/// \file assert.hpp
/// \brief Internal invariant checking and user-facing error reporting.
///
/// Two distinct mechanisms, per the C++ Core Guidelines (I.6 / E.x):
///  - RDSE_ASSERT checks *internal* invariants; violations indicate a bug in
///    rdse itself and abort with a diagnostic. Enabled in all build types
///    (the checks in hot paths are cheap at paper scale).
///  - rdse::Error is thrown for *precondition* violations by callers
///    (malformed graphs, out-of-range ids, infeasible configurations).

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rdse {

/// Exception type for all user-facing precondition and validation failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "rdse: assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace rdse

#define RDSE_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::rdse::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
    }                                                              \
  } while (false)

#define RDSE_ASSERT_MSG(expr, msg)                                 \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::rdse::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
    }                                                              \
  } while (false)

/// Throw rdse::Error with a message when a caller-visible precondition fails.
#define RDSE_REQUIRE(expr, msg)              \
  do {                                       \
    if (!(expr)) {                           \
      throw ::rdse::Error(msg);              \
    }                                        \
  } while (false)

/// Debug-only precondition check for inlined hot-path accessors (graph
/// adjacency, relaxer value reads): tens of millions of calls per sweep make
/// the branch itself measurable, so Release builds compile it out entirely.
/// Debug and sanitizer builds define RDSE_ENABLE_DCHECKS (see CMakeLists)
/// and keep the full throwing check.
#if defined(RDSE_ENABLE_DCHECKS)
#define RDSE_DCHECK(expr, msg) RDSE_REQUIRE(expr, msg)
#else
#define RDSE_DCHECK(expr, msg) \
  do {                         \
  } while (false)
#endif
