#pragma once
/// \file cancel.hpp
/// \brief Cooperative cancellation: an atomic stop flag plus an optional
/// wall-clock deadline, checked by the engines at iteration granularity.
///
/// A CancelToken is owned by the request issuer (the serve front door, a
/// CLI driver, a test) and threaded *by pointer* through the configuration
/// structs (AnnealConfig, ExplorerConfig, MapperConfig, GaConfig). The
/// engines poll it between iterations — never mid-evaluation — and bail
/// out by throwing Cancelled, which unwinds through the thread-pool job
/// barrier to the caller. Throwing (instead of returning partial results)
/// is what guarantees the serve layer's contract: a deadline-expired run
/// produces a deterministic error response, never a partial payload.
///
/// The token is thread-safe: many worker threads may poll one token while
/// another thread cancels it. A null token pointer means "never cancelled"
/// everywhere, so existing call sites pay one branch.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/assert.hpp"

namespace rdse {

/// Thrown by the engines when a CancelToken fires mid-run. Derives from
/// Error so existing catch sites report it as a normal failure; the message
/// is deterministic ("deadline exceeded" or "cancelled") so responses built
/// from it are reproducible.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Request cancellation (sticky; reason() becomes "cancelled" unless a
  /// deadline already expired).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arm a deadline `ms` milliseconds from now (steady clock). A
  /// non-positive duration expires immediately.
  void set_deadline_after_ms(std::int64_t ms) {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    deadline_ns_.store(now_ns + ms * 1'000'000, std::memory_order_relaxed);
  }

  /// True once cancel() was called or the armed deadline passed. Reading
  /// the clock only when a deadline is armed keeps the unarmed path to one
  /// relaxed atomic load.
  [[nodiscard]] bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           deadline;
  }

  /// True when the armed deadline (if any) has passed, regardless of the
  /// explicit flag.
  [[nodiscard]] bool deadline_expired() const {
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           deadline;
  }

  /// The deterministic message Cancelled carries for this token's state.
  [[nodiscard]] const char* reason() const {
    return deadline_expired() ? "deadline exceeded" : "cancelled";
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = none
};

/// The engines' polling helper: no-op on null, throws Cancelled once the
/// token fires.
inline void throw_if_cancelled(const CancelToken* token) {
  if (token != nullptr && token->cancelled()) {
    throw Cancelled(token->reason());
  }
}

}  // namespace rdse
