#include "anneal/annealer.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/statistics.hpp"

namespace rdse {

AnnealResult anneal(AnnealProblem& problem, const AnnealConfig& config) {
  RDSE_REQUIRE(config.iterations >= 0 && config.warmup_iterations >= 0,
               "anneal: negative iteration counts");
  Rng rng(config.seed);
  const auto schedule = make_schedule(config.schedule);

  AnnealResult result;
  result.schedule_name = schedule->name();

  double current = problem.cost();
  double best = current;
  result.initial_cost = current;
  problem.snapshot_best();

  std::int64_t global_iter = 0;
  auto emit = [&](bool proposed, bool accepted, bool warmup, double temp) {
    if (config.on_iteration) {
      IterationStat stat;
      stat.iteration = global_iter;
      stat.cost = current;
      stat.best = best;
      stat.temperature = temp;
      stat.proposed = proposed;
      stat.accepted = accepted;
      stat.warmup = warmup;
      config.on_iteration(stat);
    }
    ++global_iter;
  };

  auto note_best = [&]() {
    if (current < best) {
      best = current;
      result.best_iteration = global_iter;
      problem.snapshot_best();
    }
  };

  // ---- warm-up: infinite temperature, gather statistics -----------------
  RunningStats warm_stats;
  warm_stats.add(current);
  const double inf = std::numeric_limits<double>::infinity();
  for (std::int64_t i = 0; i < config.warmup_iterations; ++i) {
    bool accepted = false;
    const bool proposed = problem.propose(rng);
    if (proposed) {
      current = problem.candidate_cost();
      problem.accept();  // infinite temperature accepts every feasible move
      accepted = true;
      ++result.accepted;
      note_best();
    } else {
      ++result.infeasible;
    }
    warm_stats.add(current);
    emit(proposed, accepted, /*warmup=*/true, inf);
  }

  // ---- cooling ------------------------------------------------------------
  const double sigma0 =
      warm_stats.stddev() > 0 ? warm_stats.stddev() : std::abs(current) + 1.0;
  schedule->initialize(warm_stats.mean(), sigma0,
                       std::max<std::int64_t>(config.iterations, 1));

  std::int64_t last_improvement = 0;
  for (std::int64_t i = 0; i < config.iterations; ++i) {
    bool accepted = false;
    const bool proposed = problem.propose(rng);
    if (proposed) {
      const double cand = problem.candidate_cost();
      const double delta = cand - current;
      const double temp = schedule->temperature();
      if (delta <= 0.0 ||
          (temp > 0.0 && rng.uniform01() < std::exp(-delta / temp))) {
        problem.accept();
        current = cand;
        accepted = true;
        ++result.accepted;
        if (current < best) {
          last_improvement = i;
        }
        note_best();
      } else {
        problem.reject();
        ++result.rejected;
      }
    } else {
      ++result.infeasible;
    }
    schedule->update(current, accepted, proposed);
    emit(proposed, accepted, /*warmup=*/false, schedule->temperature());

    if (config.freeze_after > 0 &&
        i - last_improvement >= config.freeze_after) {
      break;  // frozen: no best-improvement for freeze_after iterations
    }
  }

  result.best_cost = best;
  result.final_cost = current;
  result.iterations_run = global_iter;
  return result;
}

}  // namespace rdse
