#include "anneal/annealer.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/hash.hpp"
#include "util/json.hpp"

namespace rdse {

AnnealEngine::AnnealEngine(AnnealProblem& problem, AnnealConfig config)
    : problem_(&problem),
      config_(std::move(config)),
      rng_(config_.seed),
      schedule_(make_schedule(config_.schedule)) {
  RDSE_REQUIRE(config_.iterations >= 0 && config_.warmup_iterations >= 0,
               "anneal: negative iteration counts");
  result_.schedule_name = schedule_->name();
  current_ = problem_->cost();
  best_ = current_;
  result_.initial_cost = current_;
  problem_->snapshot_best();
  warm_stats_.add(current_);
}

bool AnnealEngine::finished() const {
  return frozen_ || (global_iter_ >= config_.warmup_iterations &&
                     cooling_iter_ >= config_.iterations);
}

double AnnealEngine::temperature() const {
  if (!schedule_initialized_) {
    return std::numeric_limits<double>::infinity();
  }
  return schedule_->temperature();
}

AnnealResult AnnealEngine::result() const {
  AnnealResult r = result_;
  r.best_cost = best_;
  r.final_cost = current_;
  r.iterations_run = global_iter_;
  return r;
}

void AnnealEngine::note_best() {
  if (current_ < best_) {
    best_ = current_;
    result_.best_iteration = global_iter_;
    problem_->snapshot_best();
  }
}

void AnnealEngine::emit(bool proposed, bool accepted, bool warmup,
                        double temperature) {
  if (config_.on_iteration) {
    IterationStat stat;
    stat.iteration = global_iter_;
    stat.cost = current_;
    stat.best = best_;
    stat.temperature = temperature;
    stat.proposed = proposed;
    stat.accepted = accepted;
    stat.warmup = warmup;
    config_.on_iteration(stat);
  }
  ++global_iter_;
}

void AnnealEngine::step_warmup() {
  bool accepted = false;
  const bool proposed = problem_->propose(rng_);
  if (proposed) {
    current_ = problem_->candidate_cost();
    problem_->accept();  // infinite temperature accepts every feasible move
    accepted = true;
    ++result_.accepted;
    note_best();
  } else {
    ++result_.infeasible;
  }
  warm_stats_.add(current_);
  emit(proposed, accepted, /*warmup=*/true,
       std::numeric_limits<double>::infinity());
}

void AnnealEngine::initialize_schedule() {
  const double sigma0 = warm_stats_.stddev() > 0
                            ? warm_stats_.stddev()
                            : std::abs(current_) + 1.0;
  schedule_->initialize(warm_stats_.mean(), sigma0,
                        std::max<std::int64_t>(config_.iterations, 1));
  schedule_initialized_ = true;
}

void AnnealEngine::step_cooling() {
  const std::int64_t i = cooling_iter_;
  bool accepted = false;
  const bool proposed = problem_->propose(rng_);
  if (proposed) {
    const double cand = problem_->candidate_cost();
    const double delta = cand - current_;
    const double temp = schedule_->temperature();
    if (delta <= 0.0 ||
        (temp > 0.0 && rng_.uniform01() < std::exp(-delta / temp))) {
      problem_->accept();
      current_ = cand;
      accepted = true;
      ++result_.accepted;
      if (current_ < best_) {
        last_improvement_ = i;
      }
      note_best();
    } else {
      problem_->reject();
      ++result_.rejected;
    }
  } else {
    ++result_.infeasible;
  }
  schedule_->update(current_, accepted, proposed);
  emit(proposed, accepted, /*warmup=*/false, schedule_->temperature());
  ++cooling_iter_;

  if (config_.freeze_after > 0 &&
      i - last_improvement_ >= config_.freeze_after) {
    frozen_ = true;  // no best-improvement for freeze_after iterations
  }
}

std::int64_t AnnealEngine::run(std::int64_t max_iterations) {
  std::int64_t executed = 0;
  while (executed < max_iterations && !finished()) {
    throw_if_cancelled(config_.cancel);
    if (global_iter_ < config_.warmup_iterations) {
      step_warmup();
    } else {
      if (!schedule_initialized_) initialize_schedule();
      step_cooling();
    }
    ++executed;
  }
  // Make temperature() meaningful at a barrier that lands exactly on the
  // warm-up/cooling boundary (and when iterations == 0).
  if (!schedule_initialized_ && global_iter_ >= config_.warmup_iterations) {
    initialize_schedule();
  }
  return executed;
}

AnnealResult AnnealEngine::run_to_completion() {
  while (!finished()) {
    (void)run(std::numeric_limits<std::int64_t>::max());
  }
  return result();
}

void AnnealEngine::notify_state_replaced() {
  current_ = problem_->cost();
  if (current_ < best_) {
    // An injected improvement is progress for the freeze criterion too.
    last_improvement_ = cooling_iter_;
  }
  note_best();
}

JsonValue AnnealEngine::save_state() const {
  JsonValue out = JsonValue::object();

  const Rng::State rs = rng_.state();
  JsonValue rng = JsonValue::object();
  JsonValue words = JsonValue::array();
  for (const std::uint64_t w : rs.words) words.push_back(u64_to_hex(w));
  rng.set("words", std::move(words));
  rng.set("cached_normal", rs.cached_normal);
  rng.set("has_cached_normal", rs.has_cached_normal);
  out.set("rng", std::move(rng));

  out.set("schedule_initialized", schedule_initialized_);
  JsonValue sched = JsonValue::object();
  if (schedule_initialized_) schedule_->save_state(sched);
  out.set("schedule", std::move(sched));

  const RunningStats::Raw ws = warm_stats_.raw();
  JsonValue warm = JsonValue::object();
  warm.set("n", static_cast<std::int64_t>(ws.n));
  warm.set("mean", ws.mean);
  warm.set("m2", ws.m2);
  warm.set("min", ws.min);
  warm.set("max", ws.max);
  out.set("warm_stats", std::move(warm));

  out.set("initial_cost", result_.initial_cost);
  out.set("accepted", result_.accepted);
  out.set("rejected", result_.rejected);
  out.set("infeasible", result_.infeasible);
  out.set("best_iteration", result_.best_iteration);
  out.set("current", current_);
  out.set("best", best_);
  out.set("global_iter", global_iter_);
  out.set("cooling_iter", cooling_iter_);
  out.set("last_improvement", last_improvement_);
  out.set("frozen", frozen_);
  return out;
}

void AnnealEngine::load_state(const JsonValue& state) {
  const JsonValue& rng = state.at("rng");
  const JsonValue& words = rng.at("words");
  RDSE_REQUIRE(words.size() == 4, "anneal state: bad RNG word count");
  Rng::State rs;
  for (std::size_t i = 0; i < 4; ++i) {
    rs.words[i] = u64_from_hex(words.items()[i].as_string());
  }
  rs.cached_normal = rng.at("cached_normal").as_number();
  rs.has_cached_normal = rng.at("has_cached_normal").as_bool();
  rng_.set_state(rs);

  schedule_initialized_ = state.at("schedule_initialized").as_bool();
  if (schedule_initialized_) {
    schedule_->load_state(state.at("schedule"));
  }

  const JsonValue& warm = state.at("warm_stats");
  RunningStats::Raw ws;
  ws.n = static_cast<std::size_t>(warm.at("n").as_int());
  ws.mean = warm.at("mean").as_number();
  ws.m2 = warm.at("m2").as_number();
  ws.min = warm.at("min").as_number();
  ws.max = warm.at("max").as_number();
  warm_stats_.restore(ws);

  result_.initial_cost = state.at("initial_cost").as_number();
  result_.accepted = state.at("accepted").as_int();
  result_.rejected = state.at("rejected").as_int();
  result_.infeasible = state.at("infeasible").as_int();
  result_.best_iteration = state.at("best_iteration").as_int();
  current_ = state.at("current").as_number();
  best_ = state.at("best").as_number();
  global_iter_ = state.at("global_iter").as_int();
  cooling_iter_ = state.at("cooling_iter").as_int();
  last_improvement_ = state.at("last_improvement").as_int();
  frozen_ = state.at("frozen").as_bool();
}

AnnealResult anneal(AnnealProblem& problem, const AnnealConfig& config) {
  AnnealEngine engine(problem, config);
  return engine.run_to_completion();
}

}  // namespace rdse
