#include "anneal/problems/bipartition.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rdse {

BipartitionProblem::BipartitionProblem(const Digraph& graph,
                                       double balance_weight,
                                       std::uint64_t init_seed)
    : graph_(&graph), balance_weight_(balance_weight) {
  RDSE_REQUIRE(graph.node_count() >= 2, "Bipartition: need >= 2 vertices");
  Rng rng(init_seed);
  side_.resize(graph.node_count());
  for (std::size_t v = 0; v < side_.size(); ++v) {
    side_[v] = rng.bernoulli(0.5);
    side1_count_ += side_[v] ? 1 : 0;
  }
  cut_ = 0;
  for (EdgeId e = 0; e < graph.edge_capacity(); ++e) {
    if (!graph.edge_alive(e)) continue;
    const auto& ed = graph.edge(e);
    cut_ += (side_[ed.src] != side_[ed.dst]) ? 1 : 0;
  }
  best_side_ = side_;
}

double BipartitionProblem::cost_of(int cut, int side1) const {
  const double imbalance =
      static_cast<double>(2 * side1 - static_cast<int>(side_.size()));
  return static_cast<double>(cut) + balance_weight_ * imbalance * imbalance;
}

double BipartitionProblem::cost() const { return cost_of(cut_, side1_count_); }

bool BipartitionProblem::propose(Rng& rng) {
  pending_ = static_cast<NodeId>(rng.index(side_.size()));
  int delta_cut = 0;
  auto scan = [&](std::span<const HalfEdge> edges) {
    for (const HalfEdge& h : edges) {
      if (h.node == pending_) continue;
      const bool was_cut = side_[h.node] != side_[pending_];
      delta_cut += was_cut ? -1 : 1;
    }
  };
  scan(graph_->out_half(pending_));
  scan(graph_->in_half(pending_));
  pending_cut_ = cut_ + delta_cut;
  pending_side1_ = side1_count_ + (side_[pending_] ? -1 : 1);
  return true;
}

double BipartitionProblem::candidate_cost() const {
  RDSE_ASSERT(pending_ != kInvalidNode);
  return cost_of(pending_cut_, pending_side1_);
}

void BipartitionProblem::accept() {
  RDSE_ASSERT(pending_ != kInvalidNode);
  side_[pending_] = !side_[pending_];
  cut_ = pending_cut_;
  side1_count_ = pending_side1_;
  pending_ = kInvalidNode;
}

void BipartitionProblem::reject() { pending_ = kInvalidNode; }

void BipartitionProblem::snapshot_best() { best_side_ = side_; }

int BipartitionProblem::cut_edges() const { return cut_; }

int BipartitionProblem::imbalance() const {
  return std::abs(2 * side1_count_ - static_cast<int>(side_.size()));
}

}  // namespace rdse
