#pragma once
/// \file bipartition.hpp
/// \brief Balanced graph bipartitioning as an annealing problem.
///
/// §4.1: the accelerated annealing engine "has been validated on several
/// types of problems, including graph partitioning and continuous function
/// minimization". This module provides the graph-partitioning validation
/// problem: minimize cut edges subject to a soft balance penalty; moves flip
/// the side of a random vertex.

#include <vector>

#include "anneal/annealer.hpp"
#include "graph/digraph.hpp"

namespace rdse {

class BipartitionProblem final : public AnnealProblem {
 public:
  /// `balance_weight` scales the quadratic imbalance penalty (in units of
  /// cut edges per squared vertex of imbalance).
  BipartitionProblem(const Digraph& graph, double balance_weight = 1.0,
                     std::uint64_t init_seed = 1);

  [[nodiscard]] double cost() const override;
  bool propose(Rng& rng) override;
  [[nodiscard]] double candidate_cost() const override;
  void accept() override;
  void reject() override;
  void snapshot_best() override;

  [[nodiscard]] const std::vector<bool>& sides() const { return side_; }
  [[nodiscard]] const std::vector<bool>& best_sides() const {
    return best_side_;
  }
  [[nodiscard]] int cut_edges() const;
  [[nodiscard]] int imbalance() const;

 private:
  [[nodiscard]] double cost_of(int cut, int imbalance) const;

  const Digraph* graph_;
  double balance_weight_;
  std::vector<bool> side_;
  std::vector<bool> best_side_;
  int cut_ = 0;
  int side1_count_ = 0;
  // staged move
  NodeId pending_ = kInvalidNode;
  int pending_cut_ = 0;
  int pending_side1_ = 0;
};

}  // namespace rdse
