#include "anneal/problems/continuous.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace rdse {

ContinuousObjective sphere_objective() {
  return ContinuousObjective{
      "sphere",
      [](std::span<const double> x) {
        double s = 0.0;
        for (double v : x) s += v * v;
        return s;
      },
      -5.0, 5.0};
}

ContinuousObjective rosenbrock_objective() {
  return ContinuousObjective{
      "rosenbrock",
      [](std::span<const double> x) {
        double s = 0.0;
        for (std::size_t i = 0; i + 1 < x.size(); ++i) {
          const double a = x[i + 1] - x[i] * x[i];
          const double b = 1.0 - x[i];
          s += 100.0 * a * a + b * b;
        }
        return s;
      },
      -2.048, 2.048};
}

ContinuousObjective rastrigin_objective() {
  return ContinuousObjective{
      "rastrigin",
      [](std::span<const double> x) {
        constexpr double kPi = 3.14159265358979323846;
        double s = 10.0 * static_cast<double>(x.size());
        for (double v : x) {
          s += v * v - 10.0 * std::cos(2.0 * kPi * v);
        }
        return s;
      },
      -5.12, 5.12};
}

ContinuousProblem::ContinuousProblem(ContinuousObjective objective,
                                     std::size_t dimension,
                                     std::uint64_t init_seed)
    : obj_(std::move(objective)) {
  RDSE_REQUIRE(dimension >= 1, "ContinuousProblem: zero dimension");
  RDSE_REQUIRE(obj_.hi > obj_.lo, "ContinuousProblem: empty domain");
  Rng rng(init_seed);
  x_.resize(dimension);
  for (double& v : x_) {
    v = rng.uniform_real(obj_.lo, obj_.hi);
  }
  best_x_ = x_;
  cost_ = obj_.f(x_);
  step_ = (obj_.hi - obj_.lo) / 10.0;
}

bool ContinuousProblem::propose(Rng& rng) {
  pending_dim_ = rng.index(x_.size());
  pending_value_ = std::clamp(x_[pending_dim_] + rng.normal(0.0, step_),
                              obj_.lo, obj_.hi);
  const double saved = x_[pending_dim_];
  x_[pending_dim_] = pending_value_;
  cand_cost_ = obj_.f(x_);
  x_[pending_dim_] = saved;
  return true;
}

void ContinuousProblem::accept() {
  x_[pending_dim_] = pending_value_;
  cost_ = cand_cost_;
  // 1/5th-rule style adaptation: grow the step on success...
  step_ = std::min(step_ * 1.01, (obj_.hi - obj_.lo));
}

void ContinuousProblem::reject() {
  // ... shrink on failure (ratio tuned for ~40% equilibrium acceptance).
  step_ = std::max(step_ * 0.995, (obj_.hi - obj_.lo) * 1e-9);
}

}  // namespace rdse
