#pragma once
/// \file continuous.hpp
/// \brief Continuous function minimization as an annealing problem (the
/// second §4.1 validation domain). Moves are Gaussian perturbations of one
/// coordinate with a self-adapting step size that tracks a healthy
/// acceptance ratio — the continuous analogue of move-generation control.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "anneal/annealer.hpp"

namespace rdse {

/// Objective: R^n -> R, plus a box domain.
struct ContinuousObjective {
  std::string name;
  std::function<double(std::span<const double>)> f;
  double lo = -5.0;
  double hi = 5.0;
};

/// Standard test functions.
[[nodiscard]] ContinuousObjective sphere_objective();
[[nodiscard]] ContinuousObjective rosenbrock_objective();
[[nodiscard]] ContinuousObjective rastrigin_objective();

class ContinuousProblem final : public AnnealProblem {
 public:
  ContinuousProblem(ContinuousObjective objective, std::size_t dimension,
                    std::uint64_t init_seed = 1);

  [[nodiscard]] double cost() const override { return cost_; }
  bool propose(Rng& rng) override;
  [[nodiscard]] double candidate_cost() const override { return cand_cost_; }
  void accept() override;
  void reject() override;
  void snapshot_best() override { best_x_ = x_; }

  [[nodiscard]] const std::vector<double>& best_point() const {
    return best_x_;
  }
  [[nodiscard]] double step_size() const { return step_; }

 private:
  ContinuousObjective obj_;
  std::vector<double> x_;
  std::vector<double> best_x_;
  double cost_ = 0.0;
  // staged move
  std::size_t pending_dim_ = 0;
  double pending_value_ = 0.0;
  double cand_cost_ = 0.0;
  // self-adaptive step
  double step_ = 1.0;
};

}  // namespace rdse
