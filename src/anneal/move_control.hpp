#pragma once
/// \file move_control.hpp
/// \brief Adaptive move-class selection.
///
/// Lam's schedule controls not only the temperature but also *move
/// generation* ("the adaptive schedule specifies how to control move
/// generation to maximize cooling speed", §4.1); the paper refines the move
/// selection process further in [11]. This controller implements that idea
/// for discrete move classes: it tracks an exponentially weighted acceptance
/// rate per class and biases selection towards classes whose acceptance is
/// closest to Lam's optimal ~0.44, with a floor so no class ever starves.
/// It is off by default and ablated in EXP-A2.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace rdse {

class JsonValue;

class MoveMixController {
 public:
  /// `floor` is the minimum selection weight fraction of any class.
  explicit MoveMixController(std::vector<std::string> class_names,
                             double floor = 0.05, double ewma_alpha = 0.02,
                             double target_acceptance = 0.44);

  [[nodiscard]] std::size_t class_count() const { return names_.size(); }
  [[nodiscard]] const std::string& class_name(std::size_t c) const;

  /// Draw a move class according to the current weights.
  [[nodiscard]] std::size_t pick(Rng& rng);

  /// Report the outcome of a proposal of class `c`.
  void report(std::size_t c, bool accepted);

  /// Current normalized selection weight of a class.
  [[nodiscard]] double weight(std::size_t c) const;
  /// Smoothed acceptance rate of a class.
  [[nodiscard]] double acceptance(std::size_t c) const;

  /// Checkpoint support: per-class acceptance EWMAs, selection weights and
  /// the report counter. Class names and tuning constants are configuration
  /// and are re-established by construction; load_state throws when the
  /// class count does not match.
  void save_state(JsonValue& out) const;
  void load_state(const JsonValue& in);

 private:
  void refresh_weights();

  std::vector<std::string> names_;
  std::vector<Ewma> acceptance_;
  std::vector<double> weights_;
  double floor_;
  double target_;
  std::uint64_t reports_ = 0;
};

}  // namespace rdse
