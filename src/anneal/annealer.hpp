#pragma once
/// \file annealer.hpp
/// \brief Problem-agnostic adaptive simulated annealing (§4.1).
///
/// The engine follows the experimental protocol of §5: a configurable
/// warm-up phase at infinite temperature (every feasible move accepted)
/// gathers the cost statistics that initialize the adaptive schedule, then
/// the cooling loop runs for a fixed horizon with Metropolis acceptance.
/// Being iterative, the search "can be interrupted by the user at any time
/// and will then return the current solution": the loop supports early
/// freezing and always reports the best solution seen.

#include <cstdint>
#include <functional>
#include <string>

#include "anneal/schedule.hpp"
#include "util/rng.hpp"

namespace rdse {

/// A combinatorial optimization state explored through local moves.
/// Implementations stage *one* candidate at a time: propose() prepares it,
/// then exactly one of accept()/reject() is called.
class AnnealProblem {
 public:
  virtual ~AnnealProblem() = default;

  /// Cost of the current solution (lower is better).
  [[nodiscard]] virtual double cost() const = 0;

  /// Stage a random candidate; returns false if the drawn move was
  /// infeasible (it then counts as a null iteration, as in §4.3 where
  /// cycle-creating moves "will not be performed").
  virtual bool propose(Rng& rng) = 0;

  /// Cost of the staged candidate (only valid after propose() == true).
  [[nodiscard]] virtual double candidate_cost() const = 0;

  /// Commit / drop the staged candidate.
  virtual void accept() = 0;
  virtual void reject() = 0;

  /// Called whenever the current solution is the best seen so far.
  virtual void snapshot_best() {}
};

/// Per-iteration observation passed to the trace callback.
struct IterationStat {
  std::int64_t iteration = 0;  ///< global index (warm-up included)
  double cost = 0.0;           ///< current cost after the decision
  double best = 0.0;
  double temperature = 0.0;    ///< +inf during warm-up
  bool proposed = false;       ///< false = infeasible draw
  bool accepted = false;
  bool warmup = false;
};

struct AnnealConfig {
  std::uint64_t seed = 1;
  /// Iterations at infinite temperature before cooling starts (§5 uses
  /// 1200 on the motion-detection run).
  std::int64_t warmup_iterations = 1200;
  /// Cooling iterations after warm-up.
  std::int64_t iterations = 20'000;
  ScheduleKind schedule = ScheduleKind::kModifiedLam;
  /// Stop early when no best-improvement happened for this many iterations
  /// (0 disables; the paper runs a fixed horizon).
  std::int64_t freeze_after = 0;
  /// Optional per-iteration observer (tracing, UI).
  std::function<void(const IterationStat&)> on_iteration;
};

struct AnnealResult {
  double initial_cost = 0.0;
  double best_cost = 0.0;
  double final_cost = 0.0;
  std::int64_t iterations_run = 0;   ///< warm-up + cooling, without freeze cut
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t infeasible = 0;       ///< proposals rejected before evaluation
  std::int64_t best_iteration = 0;   ///< global index of the last improvement
  std::string schedule_name;
};

/// Run the annealing loop on a problem. The problem object ends in its
/// *current* (final) state; implementations that need the best state keep it
/// in snapshot_best().
[[nodiscard]] AnnealResult anneal(AnnealProblem& problem,
                                  const AnnealConfig& config);

}  // namespace rdse
