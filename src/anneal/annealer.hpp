#pragma once
/// \file annealer.hpp
/// \brief Problem-agnostic adaptive simulated annealing (§4.1).
///
/// The engine follows the experimental protocol of §5: a configurable
/// warm-up phase at infinite temperature (every feasible move accepted)
/// gathers the cost statistics that initialize the adaptive schedule, then
/// the cooling loop runs for a fixed horizon with Metropolis acceptance.
/// Being iterative, the search "can be interrupted by the user at any time
/// and will then return the current solution": the loop supports early
/// freezing and always reports the best solution seen.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "anneal/schedule.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

namespace rdse {

/// A combinatorial optimization state explored through local moves.
/// Implementations stage *one* candidate at a time: propose() prepares it,
/// then exactly one of accept()/reject() is called.
class AnnealProblem {
 public:
  virtual ~AnnealProblem() = default;

  /// Cost of the current solution (lower is better).
  [[nodiscard]] virtual double cost() const = 0;

  /// Stage a random candidate; returns false if the drawn move was
  /// infeasible (it then counts as a null iteration, as in §4.3 where
  /// cycle-creating moves "will not be performed").
  virtual bool propose(Rng& rng) = 0;

  /// Cost of the staged candidate (only valid after propose() == true).
  [[nodiscard]] virtual double candidate_cost() const = 0;

  /// Commit / drop the staged candidate.
  virtual void accept() = 0;
  virtual void reject() = 0;

  /// Called whenever the current solution is the best seen so far.
  virtual void snapshot_best() {}
};

/// Per-iteration observation passed to the trace callback.
struct IterationStat {
  std::int64_t iteration = 0;  ///< global index (warm-up included)
  double cost = 0.0;           ///< current cost after the decision
  double best = 0.0;
  double temperature = 0.0;    ///< +inf during warm-up
  bool proposed = false;       ///< false = infeasible draw
  bool accepted = false;
  bool warmup = false;
};

struct AnnealConfig {
  std::uint64_t seed = 1;
  /// Iterations at infinite temperature before cooling starts (§5 uses
  /// 1200 on the motion-detection run).
  std::int64_t warmup_iterations = 1200;
  /// Cooling iterations after warm-up.
  std::int64_t iterations = 20'000;
  ScheduleKind schedule = ScheduleKind::kModifiedLam;
  /// Stop early when no best-improvement happened for this many iterations
  /// (0 disables; the paper runs a fixed horizon).
  std::int64_t freeze_after = 0;
  /// Optional per-iteration observer (tracing, UI).
  std::function<void(const IterationStat&)> on_iteration;
  /// Optional cooperative-cancellation token, polled between iterations.
  /// When it fires, run()/run_to_completion() throw Cancelled — the loop
  /// never stops mid-move, so the problem object stays consistent.
  const CancelToken* cancel = nullptr;
};

struct AnnealResult {
  double initial_cost = 0.0;
  double best_cost = 0.0;
  double final_cost = 0.0;
  std::int64_t iterations_run = 0;   ///< warm-up + cooling, without freeze cut
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  std::int64_t infeasible = 0;       ///< proposals rejected before evaluation
  std::int64_t best_iteration = 0;   ///< global index of the last improvement
  std::string schedule_name;
};

/// Resumable annealing engine: the same warm-up + adaptive-cooling loop as
/// the anneal() convenience wrapper, but executed in caller-controlled
/// segments. Segmenting is behavior-preserving — running the horizon in one
/// call or in many produces bit-identical results — which is what lets the
/// replica-exchange explorer stop all replicas at fixed iteration barriers,
/// swap solutions, and resume.
class AnnealEngine {
 public:
  /// The problem must outlive the engine. Reads the initial cost and takes
  /// the first best-snapshot immediately.
  AnnealEngine(AnnealProblem& problem, AnnealConfig config);

  /// Execute at most `max_iterations` further iterations (warm-up first,
  /// then cooling). Returns the number actually executed; 0 iff finished().
  std::int64_t run(std::int64_t max_iterations);

  /// Drive the loop to its horizon (or freeze) and return the result.
  AnnealResult run_to_completion();

  /// True once the horizon is exhausted or the search froze.
  [[nodiscard]] bool finished() const;

  /// Tell the engine its problem's *current* state was replaced externally
  /// (replica exchange). Re-reads the cost and refreshes best-tracking; an
  /// injected improvement counts as progress for the freeze criterion.
  void notify_state_replaced();

  [[nodiscard]] double current_cost() const { return current_; }
  [[nodiscard]] double best_cost() const { return best_; }
  /// +inf while still in warm-up.
  [[nodiscard]] double temperature() const;
  /// Snapshot of the running totals (valid at any point, not just at the
  /// end).
  [[nodiscard]] AnnealResult result() const;

  /// Checkpoint support. save_state() captures every mutable field of the
  /// loop — the RNG stream (words as hex: JSON numbers cannot carry 64
  /// bits), schedule position, warm-up statistics, counters, costs and the
  /// freeze flag. load_state() restores them into a freshly constructed
  /// engine over a problem already holding the checkpointed *current*
  /// state; continuing the loop afterwards is bit-identical to never having
  /// stopped. Configuration is not serialized here — callers rebuild the
  /// same AnnealConfig (see core/checkpoint.hpp).
  [[nodiscard]] JsonValue save_state() const;
  void load_state(const JsonValue& state);

 private:
  void step_warmup();
  void step_cooling();
  void initialize_schedule();
  void note_best();
  void emit(bool proposed, bool accepted, bool warmup, double temperature);

  AnnealProblem* problem_;
  AnnealConfig config_;
  Rng rng_;
  std::unique_ptr<CoolingSchedule> schedule_;
  RunningStats warm_stats_;
  AnnealResult result_;
  double current_ = 0.0;
  double best_ = 0.0;
  std::int64_t global_iter_ = 0;   ///< warm-up + cooling iterations executed
  std::int64_t cooling_iter_ = 0;  ///< cooling iterations executed
  std::int64_t last_improvement_ = 0;  ///< cooling-local, for freeze_after
  bool schedule_initialized_ = false;
  bool frozen_ = false;
};

/// Run the annealing loop on a problem. The problem object ends in its
/// *current* (final) state; implementations that need the best state keep it
/// in snapshot_best().
[[nodiscard]] AnnealResult anneal(AnnealProblem& problem,
                                  const AnnealConfig& config);

}  // namespace rdse
