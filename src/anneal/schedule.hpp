#pragma once
/// \file schedule.hpp
/// \brief Cooling schedules for the local-search engine (§4.1).
///
/// The paper builds on Lam's adaptive annealing schedule: temperature is
/// steered from statistics of the cost process (mean, variance, acceptance
/// ratio) so that the system stays in quasi-equilibrium while cooling as
/// fast as possible, removing every per-problem tuning knob. Two published
/// formulations are provided:
///
///  - ModifiedLamSchedule (default): the target-acceptance-rate tracking
///    form implemented in Swartz's place-and-route tools — the paper's own
///    reference [15]. The acceptance rate is tracked against Lam's optimal
///    trajectory (~0.44 through the main phase) and the temperature is
///    nudged multiplicatively.
///  - LamDelosmeSchedule: the statistical update of Lam's thesis: the
///    inverse temperature s grows by ds = lambda * rho(A) / (s^2 sigma^3),
///    with rho(A) = 4A(1-A)^2/(2-A)^2 maximal near A ~ 1/3-0.44 (cool
///    fastest at moderate acceptance), sigma an EWMA estimate of cost
///    stddev, and a relative step clamp for numerical robustness.
///
/// GeometricSchedule (classic tuned annealing) and GreedySchedule (T = 0
/// hill climbing) complete the EXP-A1 ablation.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "util/statistics.hpp"

namespace rdse {

class JsonValue;

enum class ScheduleKind : std::uint8_t {
  kModifiedLam,
  kLamDelosme,
  kGeometric,
  kGreedy,
};

[[nodiscard]] const char* to_string(ScheduleKind kind);

/// Inverse of to_string: the kind named `name`, or nullopt when unknown.
/// Shared by every front end that accepts schedule names (CLI, serve).
[[nodiscard]] std::optional<ScheduleKind> schedule_from_name(
    std::string_view name);

/// Temperature controller interface. The annealer calls initialize() once
/// after the infinite-temperature warm-up, then update() every iteration.
class CoolingSchedule {
 public:
  virtual ~CoolingSchedule() = default;

  /// `mean0` / `sigma0` are warm-up statistics of the cost process;
  /// `horizon` is the planned number of post-warm-up iterations.
  virtual void initialize(double mean0, double sigma0,
                          std::int64_t horizon) = 0;

  /// Observe one iteration: the *current* cost after the accept/reject
  /// decision and whether the proposal was accepted. `evaluated` is false
  /// for null/cyclic draws (§4.2/§4.3 moves that were "not performed"):
  /// those advance the schedule's progress clock but must not enter the
  /// acceptance statistics, or graphs with many same-resource draws would
  /// read as cold and stall the cooling.
  virtual void update(double cost, bool accepted, bool evaluated) = 0;

  /// Current temperature (>= 0; 0 means strictly greedy).
  [[nodiscard]] virtual double temperature() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Checkpoint support: serialize the mutable runtime state into `out` /
  /// restore it from `in`. Configuration (window sizes, lambda, alpha) is
  /// not saved — it is re-established by constructing the same schedule
  /// kind. Stateless schedules (greedy) keep the no-op defaults.
  virtual void save_state(JsonValue& out) const;
  virtual void load_state(const JsonValue& in);
};

/// Factory for the built-in schedules.
[[nodiscard]] std::unique_ptr<CoolingSchedule> make_schedule(
    ScheduleKind kind);

/// Modified Lam: target-acceptance-rate trajectory tracking.
class ModifiedLamSchedule final : public CoolingSchedule {
 public:
  /// `rate_update_window` smooths the measured acceptance rate; `nudge` is
  /// the multiplicative temperature step (both from the published
  /// implementation; not problem-dependent).
  explicit ModifiedLamSchedule(double rate_update_window = 500.0,
                               double nudge = 0.999);

  void initialize(double mean0, double sigma0, std::int64_t horizon) override;
  void update(double cost, bool accepted, bool evaluated) override;
  [[nodiscard]] double temperature() const override { return temp_; }
  [[nodiscard]] std::string name() const override { return "modified-lam"; }
  void save_state(JsonValue& out) const override;
  void load_state(const JsonValue& in) override;

  /// Lam's optimal acceptance-rate trajectory at progress t in [0, 1].
  [[nodiscard]] static double target_rate(double t);

  [[nodiscard]] double accept_rate() const { return accept_rate_; }

 private:
  double window_;
  double nudge_;
  double temp_ = 1.0;
  double accept_rate_ = 1.0;
  std::int64_t horizon_ = 1;
  std::int64_t iter_ = 0;
  double temp_floor_ = 0.0;
};

/// Statistical Lam–Delosme schedule on the inverse temperature.
class LamDelosmeSchedule final : public CoolingSchedule {
 public:
  /// `lambda` is the quality/speed knob of the paper's abstract ("lets the
  /// designer select the quality of the optimization (hence its computing
  /// time)"): smaller = slower cooling = better expected quality.
  explicit LamDelosmeSchedule(double lambda = 1.0);

  void initialize(double mean0, double sigma0, std::int64_t horizon) override;
  void update(double cost, bool accepted, bool evaluated) override;
  [[nodiscard]] double temperature() const override;
  [[nodiscard]] std::string name() const override { return "lam-delosme"; }
  void save_state(JsonValue& out) const override;
  void load_state(const JsonValue& in) override;

  [[nodiscard]] static double rho(double accept_ratio);

 private:
  double lambda_;
  double s_ = 0.0;  // inverse temperature
  EwmaStats cost_stats_{1.0 / 200.0};
  Ewma accept_{1.0 / 100.0};
  double sigma0_ = 1.0;
};

/// Classic geometric cooling: T <- alpha * T every `plateau` iterations.
class GeometricSchedule final : public CoolingSchedule {
 public:
  explicit GeometricSchedule(double alpha = 0.95, std::int64_t plateau = 50);

  void initialize(double mean0, double sigma0, std::int64_t horizon) override;
  void update(double cost, bool accepted, bool evaluated) override;
  [[nodiscard]] double temperature() const override { return temp_; }
  [[nodiscard]] std::string name() const override { return "geometric"; }
  void save_state(JsonValue& out) const override;
  void load_state(const JsonValue& in) override;

 private:
  double alpha_;
  std::int64_t plateau_;
  double temp_ = 1.0;
  std::int64_t iter_ = 0;
};

/// T = 0: accept only improving moves (hill climbing baseline).
class GreedySchedule final : public CoolingSchedule {
 public:
  void initialize(double, double, std::int64_t) override {}
  void update(double, bool, bool) override {}
  [[nodiscard]] double temperature() const override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "greedy"; }
};

}  // namespace rdse
