#include "anneal/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace rdse {

void CoolingSchedule::save_state(JsonValue& /*out*/) const {}
void CoolingSchedule::load_state(const JsonValue& /*in*/) {}

const char* to_string(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kModifiedLam: return "modified-lam";
    case ScheduleKind::kLamDelosme: return "lam-delosme";
    case ScheduleKind::kGeometric: return "geometric";
    case ScheduleKind::kGreedy: return "greedy";
  }
  return "?";
}

std::optional<ScheduleKind> schedule_from_name(std::string_view name) {
  for (const ScheduleKind kind :
       {ScheduleKind::kModifiedLam, ScheduleKind::kLamDelosme,
        ScheduleKind::kGeometric, ScheduleKind::kGreedy}) {
    if (name == to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<CoolingSchedule> make_schedule(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kModifiedLam:
      return std::make_unique<ModifiedLamSchedule>();
    case ScheduleKind::kLamDelosme:
      return std::make_unique<LamDelosmeSchedule>();
    case ScheduleKind::kGeometric:
      return std::make_unique<GeometricSchedule>();
    case ScheduleKind::kGreedy:
      return std::make_unique<GreedySchedule>();
  }
  RDSE_ASSERT_MSG(false, "make_schedule: unknown kind");
  return nullptr;
}

// ---------------------------------------------------------------- ModifiedLam

ModifiedLamSchedule::ModifiedLamSchedule(double rate_update_window,
                                         double nudge)
    : window_(rate_update_window), nudge_(nudge) {
  RDSE_REQUIRE(rate_update_window >= 1.0, "ModifiedLam: window < 1");
  RDSE_REQUIRE(nudge > 0.0 && nudge < 1.0, "ModifiedLam: nudge outside (0,1)");
}

double ModifiedLamSchedule::target_rate(double t) {
  // Lam's optimal acceptance trajectory (Swartz's piecewise fit): a fast
  // exponential descent from ~1.0 to 0.44 over the first 15% of the run, a
  // 0.44 plateau until 65%, then exponential decay towards zero.
  t = std::clamp(t, 0.0, 1.0);
  if (t < 0.15) {
    return 0.44 + 0.56 * std::pow(560.0, -t / 0.15);
  }
  if (t < 0.65) {
    return 0.44;
  }
  return 0.44 * std::pow(440.0, -(t - 0.65) / 0.35);
}

void ModifiedLamSchedule::initialize(double /*mean0*/, double sigma0,
                                     std::int64_t horizon) {
  RDSE_REQUIRE(horizon >= 1, "ModifiedLam: empty horizon");
  horizon_ = horizon;
  iter_ = 0;
  // Starting at T0 ~ sigma keeps early acceptance high without the wasteful
  // multi-order-of-magnitude start of classic schedules.
  temp_ = std::max(sigma0, 1e-12);
  temp_floor_ = temp_ * 1e-12;
  accept_rate_ = 1.0;
}

void ModifiedLamSchedule::update(double /*cost*/, bool accepted,
                                 bool evaluated) {
  if (evaluated) {
    accept_rate_ += ((accepted ? 1.0 : 0.0) - accept_rate_) / window_;
  }
  const double t =
      static_cast<double>(iter_) / static_cast<double>(horizon_);
  if (accept_rate_ > target_rate(t)) {
    temp_ *= nudge_;  // too hot: cool
  } else {
    temp_ /= nudge_;  // too cold: reheat
  }
  temp_ = std::max(temp_, temp_floor_);
  ++iter_;
}

void ModifiedLamSchedule::save_state(JsonValue& out) const {
  out.set("temp", temp_);
  out.set("accept_rate", accept_rate_);
  out.set("horizon", horizon_);
  out.set("iter", iter_);
  out.set("temp_floor", temp_floor_);
}

void ModifiedLamSchedule::load_state(const JsonValue& in) {
  temp_ = in.at("temp").as_number();
  accept_rate_ = in.at("accept_rate").as_number();
  horizon_ = in.at("horizon").as_int();
  iter_ = in.at("iter").as_int();
  temp_floor_ = in.at("temp_floor").as_number();
}

// ---------------------------------------------------------------- LamDelosme

LamDelosmeSchedule::LamDelosmeSchedule(double lambda) : lambda_(lambda) {
  RDSE_REQUIRE(lambda > 0.0, "LamDelosme: lambda must be positive");
}

double LamDelosmeSchedule::rho(double a) {
  a = std::clamp(a, 0.0, 1.0);
  const double one_minus = 1.0 - a;
  const double denom = (2.0 - a) * (2.0 - a);
  return 4.0 * a * one_minus * one_minus / denom;
}

void LamDelosmeSchedule::initialize(double mean0, double sigma0,
                                    std::int64_t /*horizon*/) {
  sigma0_ = std::max(sigma0, 1e-12);
  // Start warm but not wasteful: T0 = 5 * sigma0 accepts nearly everything
  // while skipping the flat top of the acceptance curve.
  s_ = 1.0 / (5.0 * sigma0_);
  cost_stats_.reset();
  cost_stats_.add(mean0);
  accept_.reset();
  accept_.seed(1.0);
}

void LamDelosmeSchedule::update(double cost, bool accepted, bool evaluated) {
  if (!evaluated) return;  // null draws carry no statistical information
  cost_stats_.add(cost);
  accept_.add(accepted ? 1.0 : 0.0);
  const double sigma = std::max(cost_stats_.stddev(), 1e-9 * sigma0_);
  // ds = lambda * rho(A) / (s^2 sigma^3), clamped to at most +1% of s per
  // update so one noisy sigma estimate cannot quench the system
  // (unclamped, a brief sigma collapse makes 1/sigma^3 explode).
  const double raw =
      lambda_ * rho(accept_.value()) / (s_ * s_ * sigma * sigma * sigma);
  const double max_step = 0.01 * s_;
  s_ += std::min(raw, max_step);
}

double LamDelosmeSchedule::temperature() const {
  return s_ > 0.0 ? 1.0 / s_ : std::numeric_limits<double>::infinity();
}

void LamDelosmeSchedule::save_state(JsonValue& out) const {
  out.set("s", s_);
  out.set("sigma0", sigma0_);
  const EwmaStats::Raw cs = cost_stats_.raw();
  JsonValue stats = JsonValue::object();
  stats.set("mean", cs.mean);
  stats.set("mean_n", static_cast<std::int64_t>(cs.mean_n));
  stats.set("sq", cs.sq);
  stats.set("sq_n", static_cast<std::int64_t>(cs.sq_n));
  stats.set("cross", cs.cross);
  stats.set("cross_n", static_cast<std::int64_t>(cs.cross_n));
  stats.set("prev", cs.prev);
  stats.set("n", static_cast<std::int64_t>(cs.n));
  out.set("cost_stats", std::move(stats));
  out.set("accept_value", accept_.value());
  out.set("accept_n", static_cast<std::int64_t>(accept_.count()));
}

void LamDelosmeSchedule::load_state(const JsonValue& in) {
  s_ = in.at("s").as_number();
  sigma0_ = in.at("sigma0").as_number();
  const JsonValue& stats = in.at("cost_stats");
  EwmaStats::Raw cs;
  cs.mean = stats.at("mean").as_number();
  cs.mean_n = static_cast<std::size_t>(stats.at("mean_n").as_int());
  cs.sq = stats.at("sq").as_number();
  cs.sq_n = static_cast<std::size_t>(stats.at("sq_n").as_int());
  cs.cross = stats.at("cross").as_number();
  cs.cross_n = static_cast<std::size_t>(stats.at("cross_n").as_int());
  cs.prev = stats.at("prev").as_number();
  cs.n = static_cast<std::size_t>(stats.at("n").as_int());
  cost_stats_.restore(cs);
  accept_.restore(in.at("accept_value").as_number(),
                  static_cast<std::size_t>(in.at("accept_n").as_int()));
}

// ----------------------------------------------------------------- Geometric

GeometricSchedule::GeometricSchedule(double alpha, std::int64_t plateau)
    : alpha_(alpha), plateau_(plateau) {
  RDSE_REQUIRE(alpha > 0.0 && alpha < 1.0, "Geometric: alpha outside (0,1)");
  RDSE_REQUIRE(plateau >= 1, "Geometric: plateau < 1");
}

void GeometricSchedule::initialize(double /*mean0*/, double sigma0,
                                   std::int64_t /*horizon*/) {
  temp_ = std::max(10.0 * sigma0, 1e-12);
  iter_ = 0;
}

void GeometricSchedule::update(double /*cost*/, bool /*accepted*/,
                               bool /*evaluated*/) {
  ++iter_;
  if (iter_ % plateau_ == 0) {
    temp_ *= alpha_;
  }
}

void GeometricSchedule::save_state(JsonValue& out) const {
  out.set("temp", temp_);
  out.set("iter", iter_);
}

void GeometricSchedule::load_state(const JsonValue& in) {
  temp_ = in.at("temp").as_number();
  iter_ = in.at("iter").as_int();
}

}  // namespace rdse
