#include "anneal/move_control.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace rdse {

MoveMixController::MoveMixController(std::vector<std::string> class_names,
                                     double floor, double ewma_alpha,
                                     double target_acceptance)
    : names_(std::move(class_names)),
      weights_(names_.size(), 1.0),
      floor_(floor),
      target_(target_acceptance) {
  RDSE_REQUIRE(!names_.empty(), "MoveMixController: no move classes");
  RDSE_REQUIRE(floor >= 0.0 && floor * static_cast<double>(names_.size()) < 1.0,
               "MoveMixController: floor too large");
  acceptance_.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    acceptance_.emplace_back(ewma_alpha);
    acceptance_.back().seed(target_);  // neutral start
  }
  refresh_weights();
}

const std::string& MoveMixController::class_name(std::size_t c) const {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  return names_[c];
}

std::size_t MoveMixController::pick(Rng& rng) {
  return rng.weighted_index(weights_);
}

void MoveMixController::report(std::size_t c, bool accepted) {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  acceptance_[c].add(accepted ? 1.0 : 0.0);
  // Refreshing every report is cheap (few classes) and keeps pick() O(k).
  refresh_weights();
}

double MoveMixController::weight(std::size_t c) const {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  double total = 0.0;
  for (double w : weights_) total += w;
  return weights_[c] / total;
}

double MoveMixController::acceptance(std::size_t c) const {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  return acceptance_[c].value();
}

void MoveMixController::refresh_weights() {
  // Score peaks at the target acceptance and decays quadratically; the
  // floor guarantees ergodicity (every class keeps nonzero probability).
  const std::size_t k = names_.size();
  double sum = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    const double a = acceptance_[c].value();
    const double d = (a - target_) / std::max(target_, 1e-9);
    weights_[c] = std::max(1.0 - d * d, 0.0) + 1e-3;
    sum += weights_[c];
  }
  // Blend in the floor.
  for (std::size_t c = 0; c < k; ++c) {
    weights_[c] = weights_[c] / sum * (1.0 - floor_ * static_cast<double>(k)) +
                  floor_;
  }
}

}  // namespace rdse
