#include "anneal/move_control.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/json.hpp"

namespace rdse {

MoveMixController::MoveMixController(std::vector<std::string> class_names,
                                     double floor, double ewma_alpha,
                                     double target_acceptance)
    : names_(std::move(class_names)),
      weights_(names_.size(), 1.0),
      floor_(floor),
      target_(target_acceptance) {
  RDSE_REQUIRE(!names_.empty(), "MoveMixController: no move classes");
  RDSE_REQUIRE(floor >= 0.0 && floor * static_cast<double>(names_.size()) < 1.0,
               "MoveMixController: floor too large");
  acceptance_.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    acceptance_.emplace_back(ewma_alpha);
    acceptance_.back().seed(target_);  // neutral start
  }
  refresh_weights();
}

const std::string& MoveMixController::class_name(std::size_t c) const {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  return names_[c];
}

std::size_t MoveMixController::pick(Rng& rng) {
  return rng.weighted_index(weights_);
}

void MoveMixController::report(std::size_t c, bool accepted) {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  acceptance_[c].add(accepted ? 1.0 : 0.0);
  // Refreshing every report is cheap (few classes) and keeps pick() O(k).
  refresh_weights();
}

double MoveMixController::weight(std::size_t c) const {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  double total = 0.0;
  for (double w : weights_) total += w;
  return weights_[c] / total;
}

double MoveMixController::acceptance(std::size_t c) const {
  RDSE_REQUIRE(c < names_.size(), "MoveMixController: class out of range");
  return acceptance_[c].value();
}

void MoveMixController::save_state(JsonValue& out) const {
  JsonValue acc = JsonValue::array();
  for (const Ewma& e : acceptance_) {
    JsonValue pair = JsonValue::array();
    pair.push_back(e.value());
    pair.push_back(static_cast<std::int64_t>(e.count()));
    acc.push_back(std::move(pair));
  }
  out.set("acceptance", std::move(acc));
  JsonValue w = JsonValue::array();
  for (const double x : weights_) w.push_back(x);
  out.set("weights", std::move(w));
  out.set("reports", static_cast<std::int64_t>(reports_));
}

void MoveMixController::load_state(const JsonValue& in) {
  const JsonValue& acc = in.at("acceptance");
  const JsonValue& w = in.at("weights");
  RDSE_REQUIRE(acc.size() == names_.size() && w.size() == names_.size(),
               "MoveMixController: class count mismatch in saved state");
  for (std::size_t c = 0; c < names_.size(); ++c) {
    const JsonValue& pair = acc.items()[c];
    RDSE_REQUIRE(pair.size() == 2,
                 "MoveMixController: malformed acceptance entry");
    acceptance_[c].restore(
        pair.items()[0].as_number(),
        static_cast<std::size_t>(pair.items()[1].as_int()));
    weights_[c] = w.items()[c].as_number();
  }
  reports_ = static_cast<std::uint64_t>(in.at("reports").as_int());
}

void MoveMixController::refresh_weights() {
  // Score peaks at the target acceptance and decays quadratically; the
  // floor guarantees ergodicity (every class keeps nonzero probability).
  const std::size_t k = names_.size();
  double sum = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    const double a = acceptance_[c].value();
    const double d = (a - target_) / std::max(target_, 1e-9);
    weights_[c] = std::max(1.0 - d * d, 0.0) + 1e-3;
    sum += weights_[c];
  }
  // Blend in the floor.
  for (std::size_t c = 0; c < k; ++c) {
    weights_[c] = weights_[c] / sum * (1.0 - floor_ * static_cast<double>(k)) +
                  floor_;
  }
}

}  // namespace rdse
